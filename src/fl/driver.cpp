#include "fl/driver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "fl/serialize.hpp"

namespace evfl::fl {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

double sampling_hash01(std::uint64_t seed, std::uint32_t round,
                       int client_id) {
  const std::uint64_t id_bits =
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(client_id));
  const std::uint64_t h = splitmix64(
      splitmix64(seed ^ (static_cast<std::uint64_t>(round) << 32)) ^ id_bits);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::vector<std::size_t> select_sampled(const SamplingPolicy& policy,
                                        std::uint32_t round,
                                        const std::vector<int>& ids) {
  std::vector<std::size_t> out;
  switch (policy.mode) {
    case SamplingMode::kAll: {
      out.resize(ids.size());
      for (std::size_t i = 0; i < ids.size(); ++i) out[i] = i;
      return out;
    }
    case SamplingMode::kBernoulli: {
      EVFL_REQUIRE(policy.fraction > 0.0 && policy.fraction <= 1.0,
                   "sampling fraction must be in (0, 1]");
      for (std::size_t i = 0; i < ids.size(); ++i) {
        if (sampling_hash01(policy.seed, round, ids[i]) < policy.fraction) {
          out.push_back(i);
        }
      }
      return out;
    }
    case SamplingMode::kFixedSize: {
      EVFL_REQUIRE(policy.count >= 1, "sampling count must be >= 1");
      if (policy.count >= ids.size()) {
        out.resize(ids.size());
        for (std::size_t i = 0; i < ids.size(); ++i) out[i] = i;
        return out;
      }
      // Rank every client by its hash (ties by id) and keep the smallest
      // `count` — a deterministic uniform cohort independent of ordering.
      std::vector<std::size_t> ranked(ids.size());
      for (std::size_t i = 0; i < ids.size(); ++i) ranked[i] = i;
      std::vector<double> keys(ids.size());
      for (std::size_t i = 0; i < ids.size(); ++i) {
        keys[i] = sampling_hash01(policy.seed, round, ids[i]);
      }
      std::nth_element(ranked.begin(), ranked.begin() + policy.count,
                       ranked.end(),
                       [&](std::size_t a, std::size_t b) {
                         return keys[a] != keys[b] ? keys[a] < keys[b]
                                                   : ids[a] < ids[b];
                       });
      out.assign(ranked.begin(), ranked.begin() + policy.count);
      std::sort(out.begin(), out.end());
      return out;
    }
  }
  return out;  // unreachable
}

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Diagnostic mean training loss over the round's raw arrivals (corrupted
/// or stale arrivals included — it is a health signal, not an input to
/// aggregation).
float mean_loss(const std::vector<WeightUpdate>& raw) {
  if (raw.empty()) return 0.0f;
  double acc = 0.0;
  for (const WeightUpdate& u : raw) acc += u.train_loss;
  return static_cast<float>(acc / raw.size());
}

/// Distinct clients that contributed a *current-round* update.  A stale
/// replay or leftover straggler message is not a contribution: that client
/// still timed out on this round.
std::size_t distinct_fresh_senders(const std::vector<WeightUpdate>& raw,
                                   std::uint32_t round) {
  std::unordered_set<int> ids;
  for (const WeightUpdate& u : raw) {
    if (u.round == round) ids.insert(u.client_id);
  }
  return ids.size();
}

/// `reachable_clients` is the number of clients that actually received this
/// round's broadcast: only those could have contributed, so only those can
/// *time out*.  Clients whose broadcast the lossy network dropped are
/// accounted in dropped_messages, not here.
RoundMetrics close_round(Server& server, std::uint32_t round,
                         std::vector<WeightUpdate> raw,
                         std::size_t reachable_clients, double wall_seconds) {
  RoundMetrics m;
  m.round = round;
  m.mean_train_loss = mean_loss(raw);
  const std::size_t fresh = distinct_fresh_senders(raw, round);
  m.timed_out_clients = reachable_clients > fresh ? reachable_clients - fresh : 0;
  m.wall_seconds = wall_seconds;
  // Deterministic aggregation order whatever the arrival schedule: stable
  // sort by client id (duplicates stay adjacent, first arrival first).
  std::stable_sort(raw.begin(), raw.end(),
                   [](const WeightUpdate& a, const WeightUpdate& b) {
                     return a.client_id < b.client_id;
                   });
  m.weight_delta = server.finish_round(std::move(raw));
  const RoundAudit& audit = server.last_audit();
  m.updates_received = audit.accepted;
  m.rejected_updates = audit.rejected_nonfinite + audit.rejected_duplicate +
                       audit.rejected_dimension;
  m.late_updates = audit.rejected_stale;
  return m;
}

/// One telemetry record from the closed round's counters, the validator's
/// audit, and the transport byte counts the driver measured.
obs::RoundTelemetry round_telemetry(const RoundMetrics& rm,
                                    const RoundAudit& audit,
                                    std::vector<double> client_seconds,
                                    std::uint64_t bytes_down,
                                    std::uint64_t bytes_up,
                                    std::uint64_t logical_down,
                                    std::uint64_t logical_up) {
  obs::RoundTelemetry rt;
  rt.round = rm.round;
  rt.wall_seconds = rm.wall_seconds;
  rt.max_client_seconds = rm.max_client_seconds;
  rt.client_train_seconds = std::move(client_seconds);
  rt.bytes_down = bytes_down;
  rt.bytes_up = bytes_up;
  rt.logical_bytes_down = logical_down;
  rt.logical_bytes_up = logical_up;
  rt.updates_accepted = rm.updates_received;
  rt.rejected_updates = rm.rejected_updates;
  rt.late_updates = rm.late_updates;
  rt.dropped_messages = rm.dropped_messages;
  rt.timed_out_clients = rm.timed_out_clients;
  rt.population = rm.population;
  rt.sampled_clients = rm.sampled_clients;
  rt.rejected_nonfinite = audit.rejected_nonfinite;
  rt.rejected_stale = audit.rejected_stale;
  rt.rejected_duplicate = audit.rejected_duplicate;
  rt.rejected_dimension = audit.rejected_dimension;
  rt.clipped = audit.clipped;
  rt.clipped_aggregates = audit.clipped_aggregates;
  rt.quorum_met = audit.quorum_met;
  return rt;
}

}  // namespace

std::size_t FederatedRunResult::total_rejected_updates() const {
  std::size_t n = 0;
  for (const RoundMetrics& r : rounds) n += r.rejected_updates;
  return n;
}

std::size_t FederatedRunResult::total_late_updates() const {
  std::size_t n = 0;
  for (const RoundMetrics& r : rounds) n += r.late_updates;
  return n;
}

std::size_t FederatedRunResult::total_timed_out_clients() const {
  std::size_t n = 0;
  for (const RoundMetrics& r : rounds) n += r.timed_out_clients;
  return n;
}

SyncDriver::SyncDriver(Server& server,
                       std::vector<std::unique_ptr<Client>>& clients,
                       InMemoryNetwork& net, const runtime::RunContext* ctx,
                       const faults::FaultInjector* injector,
                       RoundPolicy policy, obs::RoundTelemetrySink* telemetry,
                       const AdversarySuite* adversary)
    : server_(&server),
      clients_(&clients),
      net_(&net),
      ctx_(ctx),
      injector_(injector),
      policy_(policy),
      telemetry_(telemetry),
      adversary_(adversary) {
  EVFL_REQUIRE(!clients.empty(), "SyncDriver needs clients");
  if (injector_ != nullptr) net_->set_fault_injector(injector_);
}

FederatedRunResult SyncDriver::run(std::size_t rounds) {
  const auto t0 = Clock::now();
  FederatedRunResult result;
  const std::size_t n = clients_->size();
  obs::TraceWriter* trace = ctx_ != nullptr ? ctx_->trace : nullptr;

  std::unordered_set<int> known_ids;
  std::vector<int> ids;
  ids.reserve(n);
  for (const auto& client : *clients_) {
    known_ids.insert(client->id());
    ids.push_back(client->id());
  }

  // Previous serialized update per client slot, for stale-replay injection.
  std::vector<std::vector<std::uint8_t>> last_sent(n);

  for (std::size_t r = 0; r < rounds; ++r) {
    const auto round_t0 = Clock::now();
    const std::uint32_t round = server_->round();
    // Unsampled clients never see the broadcast this round: no message, no
    // training, no timeout accounting.
    const std::vector<std::size_t> sampled =
        select_sampled(policy_.sampling, round, ids);
    // One wire encoding per round (codec-aware); every client receives a
    // copy of the same bytes, exactly like a real broadcast.
    const std::vector<std::uint8_t>& broadcast_wire = server_->broadcast_wire();
    // Dense-equivalent size of one message this round — the "logical" cost
    // an uncompressed v1 exchange would have paid.
    const std::uint64_t logical_msg_bytes =
        kWireHeaderBytesV1 + server_->weights().size() * sizeof(float);
    obs::TraceSpan round_span(trace, "fl.round", "fl");
    round_span.annotate("round", static_cast<std::uint64_t>(round));
    round_span.annotate("clients", static_cast<std::uint64_t>(n));
    round_span.annotate("sampled", static_cast<std::uint64_t>(sampled.size()));

    std::atomic<std::size_t> dropped{0};
    std::atomic<std::size_t> reached{0};
    std::atomic<std::uint64_t> bytes_down{0};
    std::vector<double> client_seconds(n, 0.0);
    auto run_client = [&](std::size_t c) {
      Client& client = *(*clients_)[c];
      // Broadcast leg: global weights cross the wire to this client.
      const std::uint64_t broadcast_size = broadcast_wire.size();
      if (!net_->send(Message{kServerNode, client.id(), broadcast_wire})) {
        ++dropped;  // simulated network dropped the broadcast
        return;
      }
      std::optional<Message> down = net_->try_receive(client.id());
      if (!down) {
        ++dropped;  // self-message lost: degrade the round, never abort
        return;
      }
      ++reached;  // broadcast delivered: this client can now time out
      bytes_down.fetch_add(broadcast_size, std::memory_order_relaxed);
      const GlobalModel received = deserialize_global(down->bytes);

      // Crash-before-update: broadcast consumed, nothing contributed.
      if (injector_ != nullptr &&
          injector_->should_crash(client.id(), received.round)) {
        return;
      }

      obs::TraceSpan train_span(trace, "fl.client_train", "fl");
      train_span.annotate("client", static_cast<std::uint64_t>(client.id()));
      train_span.annotate("round",
                          static_cast<std::uint64_t>(received.round));
      WeightUpdate update = client.train_round(received);
      train_span.end();
      // Attacker clients poison their update before scripted corruption and
      // before encoding — the point a compromised client controls.
      if (adversary_ != nullptr) {
        adversary_->poison_update(update, received.weights);
      }
      double elapsed = client.last_train_seconds();
      if (injector_ != nullptr) {
        // Straggler delay is simulated time in the sync schedule — it
        // counts against the deadline without sleeping the run.
        elapsed +=
            injector_->straggler_delay_ms(client.id(), received.round) / 1e3;
      }
      client_seconds[c] = elapsed;
      if (policy_.round_deadline_ms > 0.0 &&
          elapsed * 1000.0 > policy_.round_deadline_ms) {
        return;  // missed the round deadline: the update never ships
      }

      if (injector_ != nullptr) {
        injector_->corrupt_update(update);
        if (!last_sent[c].empty() &&
            injector_->should_replay_stale(client.id(), received.round)) {
          net_->send(Message{client.id(), kServerNode, last_sent[c]});
        }
      }

      // Upload leg: the update crosses the wire back to the server, encoded
      // against the broadcast this client decoded (the delta basis for
      // lossy codecs; byte-identical v1 for kDense).
      std::vector<std::uint8_t> bytes =
          client.encode_update(update, received.weights);
      if (injector_ != nullptr && injector_->may_replay_stale(client.id())) {
        last_sent[c] = bytes;  // retained only if a replay rule can want it
      }
      if (!net_->send(Message{client.id(), kServerNode, std::move(bytes)})) {
        ++dropped;  // simulated network dropped the upload
      }
    };

    if (ctx_ != nullptr && ctx_->parallel() && sampled.size() > 1) {
      ctx_->count("fl.pool_backed_rounds");
      ctx_->parallel_for(sampled.size(), 1,
                         [&](std::size_t begin, std::size_t end) {
                           for (std::size_t k = begin; k < end; ++k) {
                             run_client(sampled[k]);
                           }
                         });
    } else {
      for (const std::size_t c : sampled) run_client(c);
    }

    // Drain the server mailbox; the validator (not the driver) judges what
    // is aggregatable, so corrupted or replayed arrivals reach the server
    // and get counted there.
    std::vector<WeightUpdate> raw;
    raw.reserve(n);
    std::uint64_t bytes_up = 0;
    std::uint64_t logical_up = 0;
    while (std::optional<Message> up = net_->try_receive(kServerNode)) {
      bytes_up += up->bytes.size();
      logical_up += logical_msg_bytes;
      WeightUpdate u = deserialize_update(up->bytes);
      if (known_ids.find(u.client_id) == known_ids.end()) {
        ++dropped;  // update from an unknown sender: skip it
        continue;
      }
      raw.push_back(std::move(u));
    }

    RoundMetrics rm =
        close_round(*server_, round, std::move(raw), reached.load(),
                    seconds_since(round_t0));
    // Only sampled clients trained: report their times, not a vector padded
    // with zeros for clients that were never asked.
    std::vector<double> sampled_seconds;
    sampled_seconds.reserve(sampled.size());
    for (const std::size_t c : sampled) {
      sampled_seconds.push_back(client_seconds[c]);
    }
    rm.max_client_seconds =
        sampled_seconds.empty()
            ? 0.0
            : *std::max_element(sampled_seconds.begin(),
                                sampled_seconds.end());
    rm.dropped_messages = dropped.load();
    rm.population = n;
    rm.sampled_clients = sampled.size();
    if (ctx_ != nullptr) {
      ctx_->count("fl.rejected_updates",
                  static_cast<double>(rm.rejected_updates));
      ctx_->count("fl.late_updates", static_cast<double>(rm.late_updates));
      ctx_->count("fl.timed_out_clients",
                  static_cast<double>(rm.timed_out_clients));
    }
    round_span.annotate("accepted",
                        static_cast<std::uint64_t>(rm.updates_received));
    round_span.annotate("rejected",
                        static_cast<std::uint64_t>(rm.rejected_updates));
    round_span.end();
    if (telemetry_ != nullptr) {
      telemetry_->record(round_telemetry(
          rm, server_->last_audit(), std::move(sampled_seconds),
          bytes_down.load(), bytes_up,
          static_cast<std::uint64_t>(reached.load()) * logical_msg_bytes,
          logical_up));
    }
    result.simulated_parallel_seconds += rm.max_client_seconds;
    result.rounds.push_back(rm);
  }

  result.final_weights = server_->weights();
  result.network = net_->stats();
  result.total_seconds = seconds_since(t0);
  // The TraceWriter only flushes on its own buffering cadence and at
  // destruction; a caller that inspects the trace file right after run()
  // (or aborts before the writer's destructor) would miss the last rounds'
  // spans without an explicit teardown flush.
  if (trace != nullptr) trace->flush();
  return result;
}

ThreadedDriver::ThreadedDriver(Server& server,
                               std::vector<std::unique_ptr<Client>>& clients,
                               InMemoryNetwork& net,
                               const faults::FaultInjector* injector,
                               const runtime::RunContext* ctx,
                               obs::RoundTelemetrySink* telemetry,
                               const AdversarySuite* adversary)
    : server_(&server),
      clients_(&clients),
      net_(&net),
      injector_(injector),
      ctx_(ctx),
      telemetry_(telemetry),
      adversary_(adversary) {
  EVFL_REQUIRE(!clients.empty(), "ThreadedDriver needs clients");
  if (injector_ != nullptr) net_->set_fault_injector(injector_);
}

FederatedRunResult ThreadedDriver::run(std::size_t rounds) {
  return run(rounds, RoundPolicy{});
}

FederatedRunResult ThreadedDriver::run(std::size_t rounds,
                                       double collect_timeout_ms) {
  RoundPolicy policy;
  policy.round_deadline_ms = collect_timeout_ms;
  return run(rounds, policy);
}

FederatedRunResult ThreadedDriver::run(std::size_t rounds,
                                       const RoundPolicy& policy) {
  const auto t0 = Clock::now();
  FederatedRunResult result;
  const std::size_t n = clients_->size();
  obs::TraceWriter* trace = ctx_ != nullptr ? ctx_->trace : nullptr;

  ServeOptions serve_opts;
  serve_opts.injector = injector_;
  serve_opts.trace = trace;
  serve_opts.adversary = adversary_;
  // A server that holds a round open until its deadline is healthy: clients
  // must out-wait the deadline (plus slack for aggregation) before deciding
  // the server is gone, or every long round ends the fleet.
  serve_opts.receive_timeout_ms = std::max(serve_opts.receive_timeout_ms,
                                           policy.round_deadline_ms * 1.25);

  std::vector<std::thread> workers;
  workers.reserve(n);
  for (auto& client : *clients_) {
    workers.emplace_back([&client, this, rounds, serve_opts] {
      client->serve(*net_, rounds, serve_opts);
    });
  }

  std::vector<int> ids;
  ids.reserve(n);
  for (const auto& client : *clients_) ids.push_back(client->id());

  for (std::size_t r = 0; r < rounds; ++r) {
    const auto round_t0 = Clock::now();
    const std::uint32_t round = server_->round();
    const std::vector<std::uint8_t>& broadcast_bytes = server_->broadcast_wire();
    const std::uint64_t logical_msg_bytes =
        kWireHeaderBytesV1 + server_->weights().size() * sizeof(float);
    obs::TraceSpan round_span(trace, "fl.round", "fl");
    round_span.annotate("round", static_cast<std::uint64_t>(round));
    round_span.annotate("clients", static_cast<std::uint64_t>(n));
    const std::vector<std::size_t> sampled =
        select_sampled(policy.sampling, round, ids);
    round_span.annotate("sampled", static_cast<std::uint64_t>(sampled.size()));
    // One shared broadcast buffer for the whole cohort: every sampled
    // client's mailbox references the same refcounted payload, so the
    // round's downlink memory is O(1) in cohort size.
    std::vector<int> cohort;
    cohort.reserve(sampled.size());
    for (const std::size_t c : sampled) cohort.push_back(ids[c]);
    const std::size_t broadcasts_delivered =
        net_->broadcast(kServerNode, cohort, broadcast_bytes);
    const std::size_t round_drops = cohort.size() - broadcasts_delivered;
    const std::uint64_t bytes_down =
        static_cast<std::uint64_t>(broadcasts_delivered) *
        broadcast_bytes.size();

    // Collect until the hard deadline, or earlier once every delivered
    // broadcast has produced a current-round update.  Stale and duplicate
    // arrivals are kept for the validator to count and reject.
    std::vector<WeightUpdate> raw;
    std::unordered_set<int> fresh_senders;
    std::uint64_t bytes_up = 0;
    std::uint64_t logical_up = 0;
    while (fresh_senders.size() < broadcasts_delivered) {
      const double elapsed_ms = seconds_since(round_t0) * 1000.0;
      const double remaining = policy.round_deadline_ms - elapsed_ms;
      if (remaining <= 0.0) break;
      std::optional<Message> msg = net_->receive(kServerNode, remaining);
      if (!msg) break;
      bytes_up += msg->payload().size();
      logical_up += logical_msg_bytes;
      WeightUpdate u = deserialize_update(msg->payload());
      if (u.round == round) fresh_senders.insert(u.client_id);
      raw.push_back(std::move(u));
    }

    RoundMetrics rm =
        close_round(*server_, round, std::move(raw),
                    broadcasts_delivered, seconds_since(round_t0));
    // Per-client train seconds sampled at round close (sampled cohort only
    // — the others did not train): a client that did not finish this round
    // (crashed / missed broadcast) still reports its previous round's
    // value, so this is a best-effort snapshot in the threaded schedule.
    std::vector<double> client_seconds;
    client_seconds.reserve(sampled.size());
    double max_client_seconds = 0.0;
    for (const std::size_t c : sampled) {
      const double s = (*clients_)[c]->last_train_seconds();
      client_seconds.push_back(s);
      max_client_seconds = std::max(max_client_seconds, s);
    }
    rm.max_client_seconds = max_client_seconds;
    rm.dropped_messages = round_drops;
    rm.population = n;
    rm.sampled_clients = sampled.size();
    round_span.annotate("accepted",
                        static_cast<std::uint64_t>(rm.updates_received));
    round_span.annotate("rejected",
                        static_cast<std::uint64_t>(rm.rejected_updates));
    round_span.end();
    if (telemetry_ != nullptr) {
      telemetry_->record(round_telemetry(
          rm, server_->last_audit(), std::move(client_seconds), bytes_down,
          bytes_up,
          static_cast<std::uint64_t>(broadcasts_delivered) * logical_msg_bytes,
          logical_up));
    }
    result.simulated_parallel_seconds += max_client_seconds;
    result.rounds.push_back(rm);
  }

  // Release clients still waiting on a broadcast (theirs was dropped, or
  // they lag the server after missed rounds): a control-plane shutdown the
  // lossy simulation never drops, so join() is prompt instead of costing a
  // full receive budget per straggling client.
  const std::vector<std::uint8_t> bye =
      serialize(GlobalModel{kShutdownRound, {}});
  for (auto& client : *clients_) {
    net_->send_control(Message{kServerNode, client->id(), bye});
  }
  for (std::thread& w : workers) w.join();

  result.final_weights = server_->weights();
  result.network = net_->stats();
  result.total_seconds = seconds_since(t0);
  // The kShutdownRound teardown ends mid-round from the workers' point of
  // view: without an explicit flush the spans they emitted during the last
  // round can sit in the writer's buffer when the caller reads the file.
  if (trace != nullptr) trace->flush();
  return result;
}

}  // namespace evfl::fl
