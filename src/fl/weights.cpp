#include "fl/weights.hpp"

#include <cmath>

#include "common/error.hpp"

namespace evfl::fl {

void axpy(std::vector<float>& dst, double alpha,
          const std::vector<float>& src) {
  EVFL_REQUIRE(dst.size() == src.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = static_cast<float>(dst[i] + alpha * src[i]);
  }
}

double l2_distance(const std::vector<float>& a, const std::vector<float>& b) {
  EVFL_REQUIRE(a.size() == b.size(), "l2_distance: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace evfl::fl
