#include "fl/server.hpp"

#include "common/error.hpp"
#include "fl/serialize.hpp"

namespace evfl::fl {

Server::Server(std::vector<float> initial_weights, FedAvgConfig cfg,
               ValidatorConfig validator_cfg, CodecConfig codec)
    : weights_(std::move(initial_weights)),
      cfg_(cfg),
      validator_(validator_cfg),
      codec_(codec) {
  EVFL_REQUIRE(!weights_.empty(), "server needs non-empty initial weights");
}

GlobalModel Server::broadcast() const {
  return GlobalModel{round_, weights_};
}

const std::vector<std::uint8_t>& Server::broadcast_wire() {
  encode_global(round_, weights_, codec_, wire_buf_);
  has_lossy_reference_ = broadcast_is_lossy(codec_);
  if (has_lossy_reference_) {
    deserialize_global_into(wire_buf_, decoded_broadcast_);
  }
  return wire_buf_;
}

double Server::finish_round(std::vector<WeightUpdate> updates) {
  std::vector<WeightUpdate> accepted = validator_.filter(
      std::move(updates), round_, weights_, last_audit_);
  // The delta basis is what the clients decoded, not what the server holds:
  // under a lossy broadcast those differ, and re-materializing against the
  // decoded copy makes the downlink quantization error cancel exactly.
  const std::vector<float>& reference =
      has_lossy_reference_ ? decoded_broadcast_.weights : weights_;
  ++round_;
  has_lossy_reference_ = false;
  if (accepted.empty() || !last_audit_.quorum_met) return 0.0;

  // fed_avg is affine (its weights sum to 1), so materializing each delta
  // first gives exactly reference + fed_avg(deltas).
  for (WeightUpdate& u : accepted) {
    if (!u.is_delta) continue;
    EVFL_ASSERT(u.weights.size() == reference.size(),
                "validated delta has wrong dimension");
    for (std::size_t i = 0; i < u.weights.size(); ++i) {
      u.weights[i] += reference[i];
    }
    u.is_delta = false;
  }
  std::vector<float> next = fed_avg(accepted, cfg_);
  const double delta = l2_distance(weights_, next);
  weights_ = std::move(next);
  return delta;
}

}  // namespace evfl::fl
