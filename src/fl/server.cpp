#include "fl/server.hpp"

#include "common/error.hpp"

namespace evfl::fl {

Server::Server(std::vector<float> initial_weights, FedAvgConfig cfg)
    : weights_(std::move(initial_weights)), cfg_(cfg) {
  EVFL_REQUIRE(!weights_.empty(), "server needs non-empty initial weights");
}

GlobalModel Server::broadcast() const {
  return GlobalModel{round_, weights_};
}

double Server::finish_round(const std::vector<WeightUpdate>& updates) {
  ++round_;
  if (updates.empty()) return 0.0;
  for (const WeightUpdate& u : updates) {
    EVFL_REQUIRE(u.weights.size() == weights_.size(),
                 "update dimension mismatch at server");
  }
  std::vector<float> next = fed_avg(updates, cfg_);
  const double delta = l2_distance(weights_, next);
  weights_ = std::move(next);
  return delta;
}

}  // namespace evfl::fl
