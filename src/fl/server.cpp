#include "fl/server.hpp"

#include "common/error.hpp"

namespace evfl::fl {

Server::Server(std::vector<float> initial_weights, FedAvgConfig cfg,
               ValidatorConfig validator_cfg)
    : weights_(std::move(initial_weights)),
      cfg_(cfg),
      validator_(validator_cfg) {
  EVFL_REQUIRE(!weights_.empty(), "server needs non-empty initial weights");
}

GlobalModel Server::broadcast() const {
  return GlobalModel{round_, weights_};
}

double Server::finish_round(std::vector<WeightUpdate> updates) {
  const std::vector<WeightUpdate> accepted = validator_.filter(
      std::move(updates), round_, weights_, last_audit_);
  ++round_;
  if (accepted.empty() || !last_audit_.quorum_met) return 0.0;

  std::vector<float> next = fed_avg(accepted, cfg_);
  const double delta = l2_distance(weights_, next);
  weights_ = std::move(next);
  return delta;
}

}  // namespace evfl::fl
