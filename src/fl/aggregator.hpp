// Composable aggregation core — the round logic that used to live in
// fl::Server (validate → clip → quorum → FedAvg → advance), extracted so it
// can stack into trees.
//
// Aggregator is the reusable node: it holds a weight vector, gates incoming
// updates through the round's validator rules, folds accepted updates into
// an exact fixed-point accumulator as they arrive (O(dim) memory — nothing
// buffers the raw updates), and advances the round on close.  fl::Server is
// now a thin alias for the root of a one-level tree.
//
// Under a Byzantine-robust FedAvgConfig::rule the node switches to a
// bounded buffering mode: leaf updates (decoded to dense by the codec
// layer, so robustness composes with top-k/quantized wire formats) are
// buffered up to robust_buffer_cap and reduced order-statistically at
// close; forwarded shard aggregates — already robust at their own tier —
// keep folding into the exact accumulator, and the two components combine
// by total FedAvg weight ("robust-per-shard, fold upstream").
//
// EdgeAggregator is simultaneously a server to its shard of clients and a
// client to its parent: adopt the parent's broadcast, serve the shard,
// forward ONE update upstream carrying the shard's cumulative sample count.
// Under kDense upstream the forwarded update is the shard's raw fixed-point
// sums (kAggSum), so the parent's fold is bit-identical to having seen every
// leaf directly — see fl/fedavg.hpp for the grouping-invariance argument.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fl/codec.hpp"
#include "fl/fedavg.hpp"
#include "fl/validator.hpp"
#include "fl/weights.hpp"

namespace evfl::fl {

class Aggregator {
 public:
  explicit Aggregator(std::vector<float> initial_weights, FedAvgConfig cfg = {},
                      ValidatorConfig validator_cfg = {},
                      CodecConfig codec = {});

  std::uint32_t round() const { return round_; }
  const std::vector<float>& weights() const { return weights_; }
  const CodecConfig& codec() const { return codec_; }
  AggregationRule rule() const { return cfg_.rule; }

  /// The broadcast for the current round.
  GlobalModel broadcast() const;

  /// The broadcast for the current round as wire bytes under the configured
  /// codec (internal buffer, reused across rounds — valid until the next
  /// call).  When the codec makes the broadcast lossy, the aggregator also
  /// decodes its own message and keeps the result as the round's delta
  /// reference: clients compute deltas against what they *received*, so the
  /// server must re-materialize against the same basis — that way downlink
  /// quantization error cancels exactly instead of compounding per round.
  const std::vector<std::uint8_t>& broadcast_wire();

  /// Become a subordinate node: replace round and weights with the parent's
  /// broadcast.  Aborts any open round.  Dimension must match.
  void adopt(std::uint32_t round, const std::vector<float>& weights);

  /// Stream one arrival into the open round (lazily opened on first offer).
  /// The update passes the validator gate in arrival order; if accepted it
  /// is folded immediately and its storage can be released by the caller.
  void offer(WeightUpdate u);

  /// Seal the round: stamp the audit, advance the round counter, and — when
  /// quorum was met — replace the weights with the accumulated mean.
  /// Returns the L2 movement of the global weights (0.0 for an empty,
  /// all-rejected, or under-quorum round, which leaves weights unchanged).
  double close_round();

  /// Batch compatibility shim: offer() every update in order, then
  /// close_round().  Identical audit and weight semantics to the historical
  /// Server::finish_round.
  double finish_round(std::vector<WeightUpdate> updates);

  /// Validation outcome of the most recent closed round.
  const RoundAudit& last_audit() const { return last_audit_; }

  // Post-close views of what the round accumulated (what an EdgeAggregator
  // forwards upstream).  Valid until the next offer()/adopt().
  const FedAccumulator& accumulated() const { return accum_; }
  std::uint64_t accepted_samples() const { return samples_accum_; }
  /// Leaves covered this round, across both the exact accumulator and the
  /// robust buffer (equals accumulated().contributors() under kMean).
  std::uint64_t accepted_contributors() const;
  /// Total FedAvg weight folded + buffered this round.
  std::uint64_t accepted_weight() const;
  /// Fold-weighted mean train loss of the accepted updates.
  float accepted_loss() const;

 private:
  void open_round();

  std::vector<float> weights_;
  FedAvgConfig cfg_;
  UpdateValidator validator_;
  CodecConfig codec_;
  RoundAudit last_audit_;
  std::uint32_t round_ = 0;
  std::vector<std::uint8_t> wire_buf_;   // broadcast_wire scratch
  GlobalModel decoded_broadcast_;        // lossy-broadcast reference
  bool has_lossy_reference_ = false;

  std::optional<RoundGate> gate_;        // engaged while a round is open
  FedAccumulator accum_;
  RobustBuffer robust_buf_;              // leaf buffer under robust rules
  std::uint64_t samples_accum_ = 0;
  double loss_accum_ = 0.0;              // Σ fold_weight * train_loss
  std::vector<float> next_scratch_;      // close_round mean target
  std::vector<float> robust_scratch_;    // robust-reduction target
};

/// One interior node of an aggregation tree: a server to its shard, a
/// client to its parent.
class EdgeAggregator {
 public:
  /// `id` is this node's client id toward the parent (must be unique among
  /// the parent's children; drivers use negative ids so leaves and edges
  /// can never collide).  `shard_codec` is the leaf→edge wire codec,
  /// `upstream_codec` the edge→parent one; kDense upstream forwards exact
  /// fixed-point sums (kAggSum), anything else forwards the shard mean
  /// through the regular update encoder (error feedback included).
  EdgeAggregator(std::int32_t id, std::vector<float> initial_weights,
                 FedAvgConfig fedavg = {}, ValidatorConfig validator_cfg = {},
                 CodecConfig shard_codec = {}, CodecConfig upstream_codec = {});

  std::int32_t id() const { return id_; }
  const Aggregator& core() const { return core_; }

  /// Adopt the parent's broadcast for this round (wire bytes, any broadcast
  /// codec).  Must be called before serving the shard.
  void begin_round(const std::vector<std::uint8_t>& parent_wire);

  /// The shard-facing broadcast (one shared buffer for the whole shard).
  const std::vector<std::uint8_t>& shard_broadcast_wire();

  /// Stream one shard arrival (decoded) into the open round.
  void offer(WeightUpdate u) { core_.offer(std::move(u)); }

  /// Close the shard round and build the single upstream update.  Returns
  /// nullptr when the shard had nothing aggregatable (no arrivals, all
  /// rejected, or under per-tier quorum) — the parent then simply sees one
  /// fewer child this round: partial aggregation, never an abort.
  const std::vector<std::uint8_t>* forward_wire();

  /// Audit of the most recent shard round.
  const RoundAudit& last_audit() const { return core_.last_audit(); }

 private:
  std::int32_t id_;
  Aggregator core_;
  CodecConfig upstream_codec_;
  UpdateEncoder upstream_encoder_;
  GlobalModel parent_model_;             // begin_round decode scratch
  std::vector<float> parent_reference_;  // delta basis toward the parent
  std::vector<std::uint8_t> up_buf_;     // forwarded-update scratch
};

}  // namespace evfl::fl
