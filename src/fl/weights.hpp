// Flat model-weight containers exchanged between federated participants.
// Only these vectors ever leave a client — raw data stays local, which is
// the paper's privacy claim made structural.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace evfl::fl {

/// Fixed-point accumulator term used by the exact FedAvg path.  Weighted
/// per-leaf products are truncated into Q?.64 fixed point; integer addition
/// is associative, which is what makes tree aggregation bit-identical to
/// flat aggregation regardless of how leaves are grouped into shards.
using ExactTerm = __int128;

/// One client's contribution to a federated round.
struct WeightUpdate {
  std::int32_t client_id = -1;
  std::uint32_t round = 0;
  std::uint64_t sample_count = 0;   // local training examples (FedAvg weight)
  std::vector<float> weights;
  float train_loss = 0.0f;          // diagnostic only; not used by FedAvg
  /// When true, `weights` holds `local - broadcast` (a wire-v2 delta codec
  /// decoded it) rather than absolute weights.  The server validates the
  /// delta directly, averages in delta space and re-materializes against
  /// the round's broadcast reference.
  bool is_delta = false;
  /// Non-empty iff this update is a forwarded partial aggregate (kAggSum
  /// wire codec): the raw fixed-point sums of an edge aggregator's shard.
  /// `weights` then holds the float mean view (for validator rules); the
  /// parent folds `agg_terms` instead, preserving exactness.
  std::vector<ExactTerm> agg_terms;
  std::uint64_t agg_contributors = 0;  // leaves behind this aggregate
};

/// Global model broadcast from server to clients.
struct GlobalModel {
  std::uint32_t round = 0;
  std::vector<float> weights;
};

/// Sentinel round number: a GlobalModel carrying it is a control-plane
/// shutdown signal ("no more rounds are coming"), never a training round.
inline constexpr std::uint32_t kShutdownRound = 0xFFFFFFFFu;

/// Elementwise: dst += alpha * src  (sizes must match).
void axpy(std::vector<float>& dst, double alpha, const std::vector<float>& src);

/// L2 distance between weight vectors (convergence diagnostics).
double l2_distance(const std::vector<float>& a, const std::vector<float>& b);

}  // namespace evfl::fl
