// Pluggable compression codecs for the federated comms path ("wire v2").
//
// The paper's federated design exchanges only model parameters, and at the
// target scale the canonical FL bottleneck is exactly those bytes: a dense
// fp32 exchange costs 2 x params x 4B x clients every round.  This layer
// shrinks the exchange while keeping the round protocol unchanged:
//
//   kDense     — lossless fp32, byte-identical to wire v1 (the default; all
//                scenario outputs stay bit-identical to the uncompressed
//                path).
//   kDelta     — clients ship `local - global` against the round's broadcast
//                instead of absolute weights (same size, but the basis every
//                lossy codec builds on, and useful for entropy-style
//                transports).
//   kTopK      — top-k sparsification of the delta by magnitude, with
//                client-side error-feedback residual accumulation: dropped
//                coordinates are added back into the next round's delta, so
//                they are re-sent once they accumulate (Deep Gradient
//                Compression style — convergence is preserved, not traded).
//   kTopKQuant — kTopK plus block quantization of the surviving values
//                (per-block fp32 scale over kQuantBlock values, int8 or int4
//                payload).  Quantization error also feeds the residual.
//                Under this codec the broadcast leg is block-quantized too
//                (8-bit, stateless — a client that missed rounds can still
//                decode), which is where the downlink 4x comes from.
//
// The encoder is client-side state (one residual vector per client).  The
// server decodes updates to dense *delta* vectors (WeightUpdate::is_delta),
// runs the UpdateValidator on the decoded update, averages in delta space
// and re-materializes against the broadcast reference — see
// Server::finish_round and DESIGN.md §10.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fl/weights.hpp"
#include "nn/quant.hpp"

namespace evfl::fl {

/// Payload encodings that can appear in a v2 wire header.  kDense is never
/// emitted as v2 (it keeps the v1 layout); kQuantDense is the broadcast-leg
/// encoding and never carries an update.
enum class CodecKind : std::uint8_t {
  kDense = 0,      // absolute fp32 weights (wire v1 layout)
  kDelta = 1,      // dense fp32 delta vs the round's broadcast
  kTopK = 2,       // sparse top-k fp32 delta
  kTopKQuant = 3,  // sparse top-k block-quantized delta
  kQuantDense = 4, // dense block-quantized absolute weights (broadcast only)
  kAggSum = 5,     // exact fixed-point partial sums forwarded by an edge
                   // aggregator (wire-only; never a CLI-selectable codec)
};

/// Values per quantization block; one fp32 scale is stored per block.
/// (The grid itself lives in nn/quant.hpp, shared with the serving engine.)
inline constexpr std::size_t kQuantBlock = nn::kQuantBlockSize;

struct CodecConfig {
  CodecKind kind = CodecKind::kDense;
  /// Fraction of delta coordinates kept per update (kTopK/kTopKQuant);
  /// at least one coordinate always ships.
  double topk_frac = 0.05;
  /// Bits per surviving value under kTopKQuant: 8 (int8) or 4 (int4 pairs).
  /// The broadcast leg always quantizes at 8 bits — downlink coarseness
  /// would perturb every client's starting point, uplink error is absorbed
  /// by the error-feedback residual.
  int quant_bits = 8;
  /// Under kTopKQuant, also block-quantize the server's broadcast (the
  /// downlink is half the round's bytes; without this the best possible
  /// round-level ratio is 2x).
  bool quantize_broadcast = true;
};

/// "dense" / "delta" / "topk" / "topk_q".
std::string to_string(CodecKind kind);

/// Inverse of to_string for the --codec CLI knob; throws evfl::Error on an
/// unknown name.
CodecKind parse_codec_kind(const std::string& name);

/// Client-side stateful encoder: turns one round's WeightUpdate into wire
/// bytes against the broadcast the client actually received, carrying the
/// error-feedback residual across rounds.
///
/// Every scratch vector (residual, delta, selection indices, quantization
/// buffers) and the caller's output buffer are reused across rounds, so the
/// steady-state serialize path performs no heap allocations — the property
/// bench_comms --check-allocs pins.
class UpdateEncoder {
 public:
  explicit UpdateEncoder(CodecConfig cfg = {});

  const CodecConfig& config() const { return cfg_; }

  /// Serialize `update` for the wire into `out` (cleared and reused).
  /// `reference` is the round's broadcast weights as the client decoded
  /// them — the base of the delta.  For kDense the output is byte-identical
  /// to the v1 serialize(update).
  ///
  /// A non-finite delta (a Byzantine/corrupted update) is shipped as a
  /// dense kDelta payload instead of being sparsified: NaNs must reach the
  /// server's validator intact, and magnitude selection over NaNs is
  /// meaningless.
  void encode(const WeightUpdate& update, const std::vector<float>& reference,
              std::vector<std::uint8_t>& out);

  /// Error-feedback residual (empty until the first lossy encode; test and
  /// diagnostics hook).
  const std::vector<float>& residual() const { return residual_; }

  /// Drop accumulated residual state (e.g. when the model is re-seeded).
  void reset();

 private:
  CodecConfig cfg_;
  std::vector<float> residual_;
  std::vector<float> delta_;          // scratch: this round's EF-adjusted delta
  std::vector<std::uint32_t> index_;  // scratch: selection order
  std::vector<float> gathered_;       // scratch: selected values, index order
  std::vector<float> scales_;         // scratch: per-block quant scales
  std::vector<std::int8_t> quants_;   // scratch: quantized selected values
};

/// Serialize the round's broadcast under `cfg` into `out` (cleared and
/// reused).  kTopKQuant with quantize_broadcast emits a v2 kQuantDense
/// message (8-bit block quantization); every other codec emits the v1 dense
/// layout byte-identically.
void encode_global(std::uint32_t round, const std::vector<float>& weights,
                   const CodecConfig& cfg, std::vector<std::uint8_t>& out);

/// True when `cfg` makes the broadcast leg lossy — the server must then
/// track the decoded broadcast as the round's delta reference.
bool broadcast_is_lossy(const CodecConfig& cfg);

}  // namespace evfl::fl
