#include "fl/serialize.hpp"

#include <array>
#include <cstring>

#include <cmath>

#include "common/error.hpp"
#include "fl/codec.hpp"
#include "fl/fedavg.hpp"
#include "fl/wire_detail.hpp"

namespace evfl::fl {

namespace {

using wire_detail::Reader;
using wire_detail::Writer;

// ---- CRC-32, slice-by-8 ----------------------------------------------------
// table[0] is the classic byte-at-a-time table; table[k][b] extends it so
// that eight input bytes fold into the running CRC with eight independent
// lookups per 64-bit load instead of eight dependent byte rounds.

struct CrcTables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
};

CrcTables make_crc_tables() {
  CrcTables tables;
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    tables.t[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables.t[k - 1][i];
      tables.t[k][i] = (prev >> 8) ^ tables.t[0][prev & 0xFFu];
    }
  }
  return tables;
}

struct Header {
  std::uint16_t version = kWireVersion;
  std::uint16_t kind = 0;
  std::uint32_t round = 0;
  std::int32_t client = -1;
  std::uint64_t samples = 0;
  float loss = 0.0f;
  CodecKind codec = CodecKind::kDense;
  int quant_bits = 0;
  std::uint16_t agg_leaves = 0;  // saturated leaves behind a forwarded mean
  std::uint64_t dim = 0;   // logical weight count after decoding
  std::uint64_t nnz = 0;   // entries on the wire
  std::uint32_t crc = 0;
};

void write_message(std::vector<std::uint8_t>& out, MessageKind kind,
                   std::uint32_t round, std::int32_t client,
                   std::uint64_t samples, float loss,
                   const std::vector<float>& weights) {
  out.clear();
  out.reserve(kWireHeaderBytesV1 + weights.size() * sizeof(float));
  Writer w(out);
  w.put(kWireMagic);
  w.put(kWireVersion);
  w.put(static_cast<std::uint16_t>(kind));
  w.put(round);
  w.put(client);
  w.put(samples);
  w.put(loss);
  w.put(static_cast<std::uint64_t>(weights.size()));
  w.put(crc32(reinterpret_cast<const std::uint8_t*>(weights.data()),
              weights.size() * sizeof(float)));
  w.put_floats(weights.data(), weights.size());
}

Header read_header(Reader& r) {
  const auto magic = r.get<std::uint32_t>();
  if (magic != kWireMagic) throw FormatError("wire: bad magic");
  Header h;
  h.version = r.get<std::uint16_t>();
  if (h.version != kWireVersion && h.version != kWireVersion2) {
    throw FormatError("wire: unsupported version " +
                      std::to_string(h.version));
  }
  h.kind = r.get<std::uint16_t>();
  h.round = r.get<std::uint32_t>();
  h.client = r.get<std::int32_t>();
  h.samples = r.get<std::uint64_t>();
  h.loss = r.get<float>();
  if (h.version == kWireVersion) {
    h.dim = r.get<std::uint64_t>();
    h.nnz = h.dim;
    h.codec = CodecKind::kDense;
    h.quant_bits = 0;
  } else {
    const auto codec = r.get<std::uint8_t>();
    if (codec > static_cast<std::uint8_t>(CodecKind::kAggSum)) {
      throw FormatError("wire: unknown codec " + std::to_string(codec));
    }
    h.codec = static_cast<CodecKind>(codec);
    h.quant_bits = r.get<std::uint8_t>();
    h.agg_leaves = r.get<std::uint16_t>();
    // Only a forwarded update mean legitimately carries the field; a
    // broadcast or an exact aggregate (whose contributor count rides in the
    // payload) with it set is a forgery or corruption.
    if (h.agg_leaves != 0 &&
        (h.kind != static_cast<std::uint16_t>(MessageKind::kWeightUpdate) ||
         h.codec == CodecKind::kAggSum)) {
      throw FormatError("wire: unexpected agg_leaves field");
    }
    h.dim = r.get<std::uint64_t>();
    h.nnz = r.get<std::uint64_t>();
    if (h.dim > kMaxWireDim) throw FormatError("wire: dimension too large");
    if (h.nnz > h.dim) throw FormatError("wire: nnz exceeds dimension");
    const bool quantized = h.codec == CodecKind::kTopKQuant ||
                           h.codec == CodecKind::kQuantDense;
    if (quantized && h.quant_bits != 4 && h.quant_bits != 8) {
      throw FormatError("wire: unsupported quant bits " +
                        std::to_string(h.quant_bits));
    }
    if (!quantized && h.quant_bits != 0) {
      throw FormatError("wire: quant bits on an unquantized codec");
    }
    if ((h.codec == CodecKind::kDense || h.codec == CodecKind::kDelta ||
         h.codec == CodecKind::kQuantDense ||
         h.codec == CodecKind::kAggSum) &&
        h.nnz != h.dim) {
      throw FormatError("wire: dense codec with nnz != dim");
    }
  }
  h.crc = r.get<std::uint32_t>();
  return h;
}

/// Payload byte span for a validated header.
std::size_t payload_bytes(const Header& h) {
  const std::size_t nnz = static_cast<std::size_t>(h.nnz);
  const std::size_t blocks = (nnz + kQuantBlock - 1) / kQuantBlock;
  switch (h.codec) {
    case CodecKind::kDense:
    case CodecKind::kDelta:
      return nnz * sizeof(float);
    case CodecKind::kTopK:
      return nnz * (sizeof(std::uint32_t) + sizeof(float));
    case CodecKind::kTopKQuant:
      return nnz * sizeof(std::uint32_t) + blocks * sizeof(float) +
             wire_detail::packed_bytes(nnz, h.quant_bits);
    case CodecKind::kQuantDense:
      return blocks * sizeof(float) +
             wire_detail::packed_bytes(nnz, h.quant_bits);
    case CodecKind::kAggSum:
      // contributors + total_weight, then one i128 (two u64 words) per term.
      return 2 * sizeof(std::uint64_t) + nnz * 16;
  }
  throw FormatError("wire: unknown codec");  // unreachable after read_header
}

/// Sign-extend a packed `bits`-wide two's-complement value.
int unpack_signed(std::uint32_t raw, int bits) {
  const std::uint32_t sign = 1u << (bits - 1);
  return static_cast<int>((raw ^ sign)) - static_cast<int>(sign);
}

/// Read `h.nnz` strictly-increasing indices < h.dim.
void read_indices(Reader& r, const Header& h,
                  std::vector<std::uint32_t>& out) {
  out.resize(static_cast<std::size_t>(h.nnz));
  std::int64_t prev = -1;
  for (std::uint32_t& idx : out) {
    idx = r.get<std::uint32_t>();
    if (idx >= h.dim) throw FormatError("wire: sparse index out of range");
    if (static_cast<std::int64_t>(idx) <= prev) {
      throw FormatError("wire: sparse indices not strictly increasing");
    }
    prev = idx;
  }
}

/// Decode the (validated, CRC-checked) payload into a dense float vector.
/// Returns true when the result is a delta against the broadcast reference.
bool read_payload(Reader& r, const Header& h, std::vector<float>& weights,
                  std::vector<std::uint32_t>& index_scratch) {
  const std::size_t bytes = payload_bytes(h);
  r.require(bytes, "truncated payload");
  const std::uint32_t actual = crc32(r.cursor(), bytes);
  if (actual != h.crc) throw FormatError("wire: payload CRC mismatch");

  const std::size_t dim = static_cast<std::size_t>(h.dim);
  const std::size_t nnz = static_cast<std::size_t>(h.nnz);
  switch (h.codec) {
    case CodecKind::kDense:
    case CodecKind::kDelta:
      r.get_floats_into(nnz, weights);
      return h.codec == CodecKind::kDelta;
    case CodecKind::kTopK: {
      read_indices(r, h, index_scratch);
      weights.assign(dim, 0.0f);
      for (std::size_t j = 0; j < nnz; ++j) {
        weights[index_scratch[j]] = r.get<float>();
      }
      return true;
    }
    case CodecKind::kTopKQuant: {
      read_indices(r, h, index_scratch);
      // Two cursors over one span: block scales sit between the indices and
      // the packed values, so the value loop reads its block's scale by
      // offset instead of staging a scale array.
      const std::size_t blocks = (nnz + kQuantBlock - 1) / kQuantBlock;
      const std::uint8_t* scales = r.cursor();
      r.skip(blocks * sizeof(float));
      const std::uint8_t* packed = r.cursor();
      r.skip(wire_detail::packed_bytes(nnz, h.quant_bits));
      weights.assign(dim, 0.0f);
      for (std::size_t j = 0; j < nnz; ++j) {
        float scale;
        std::memcpy(&scale, scales + (j / kQuantBlock) * sizeof(float),
                    sizeof(float));
        std::uint32_t raw;
        if (h.quant_bits == 8) {
          raw = packed[j];
        } else {
          raw = (packed[j / 2] >> ((j % 2) * 4)) & 0xFu;
        }
        weights[index_scratch[j]] =
            static_cast<float>(unpack_signed(raw, h.quant_bits)) * scale;
      }
      return true;
    }
    case CodecKind::kQuantDense: {
      const std::size_t blocks = (dim + kQuantBlock - 1) / kQuantBlock;
      const std::uint8_t* scales = r.cursor();
      r.skip(blocks * sizeof(float));
      const std::uint8_t* packed = r.cursor();
      r.skip(wire_detail::packed_bytes(dim, h.quant_bits));
      weights.resize(dim);
      for (std::size_t j = 0; j < dim; ++j) {
        float scale;
        std::memcpy(&scale, scales + (j / kQuantBlock) * sizeof(float),
                    sizeof(float));
        std::uint32_t raw;
        if (h.quant_bits == 8) {
          raw = packed[j];
        } else {
          raw = (packed[j / 2] >> ((j % 2) * 4)) & 0xFu;
        }
        weights[j] =
            static_cast<float>(unpack_signed(raw, h.quant_bits)) * scale;
      }
      return false;  // absolute weights, just coarser
    }
    case CodecKind::kAggSum:
      // Decoded by read_agg_payload from the update path; a global message
      // carrying it is rejected before reaching here.
      throw FormatError("wire: aggregate payload outside an update");
  }
  throw FormatError("wire: unknown codec");  // unreachable after read_header
}

/// Decode a kAggSum payload: CRC, then contributors / total_weight / terms.
/// Fills both the exact fields and a float mean view in `out.weights` so
/// every validator rule that inspects the decoded vector still applies.
void read_agg_payload(Reader& r, const Header& h, WeightUpdate& out) {
  const std::size_t bytes = payload_bytes(h);
  r.require(bytes, "truncated payload");
  const std::uint32_t actual = crc32(r.cursor(), bytes);
  if (actual != h.crc) throw FormatError("wire: payload CRC mismatch");

  out.agg_contributors = r.get<std::uint64_t>();
  const auto total_weight = r.get<std::uint64_t>();
  if (total_weight == 0) {
    throw FormatError("wire: aggregate with zero total weight");
  }
  const std::size_t dim = static_cast<std::size_t>(h.dim);
  out.agg_terms.resize(dim);
  out.weights.resize(dim);
  const double tw = static_cast<double>(total_weight);
  for (std::size_t i = 0; i < dim; ++i) {
    const auto lo = r.get<std::uint64_t>();
    const auto hi = r.get<std::uint64_t>();
    ExactTerm t = static_cast<ExactTerm>(
        (static_cast<unsigned __int128>(hi) << 64) |
        static_cast<unsigned __int128>(lo));
    // Clamp decoded terms: a hostile peer could otherwise craft sums whose
    // addition overflows the parent's accumulator (signed overflow is UB).
    t = clamp_wire_term(t);
    out.agg_terms[i] = t;
    out.weights[i] =
        static_cast<float>(std::ldexp(static_cast<double>(t), -64) / tw);
  }
}

thread_local std::vector<std::uint32_t> t_index_scratch;

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const CrcTables tables = make_crc_tables();
  const auto& t = tables.t;
  std::uint32_t c = 0xFFFFFFFFu;
  while (size >= 8) {
    std::uint32_t lo, hi;
    std::memcpy(&lo, data, 4);
    std::memcpy(&hi, data + 4, 4);
    lo ^= c;
    c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
        t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
        t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    data += 8;
    size -= 8;
  }
  for (std::size_t i = 0; i < size; ++i) {
    c = t[0][(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void serialize_into(const WeightUpdate& update,
                    std::vector<std::uint8_t>& out) {
  write_message(out, MessageKind::kWeightUpdate, update.round,
                update.client_id, update.sample_count, update.train_loss,
                update.weights);
}

void serialize_into(const GlobalModel& model, std::vector<std::uint8_t>& out) {
  write_message(out, MessageKind::kGlobalModel, model.round, -1, 0, 0.0f,
                model.weights);
}

std::vector<std::uint8_t> serialize(const WeightUpdate& update) {
  std::vector<std::uint8_t> out;
  serialize_into(update, out);
  return out;
}

std::vector<std::uint8_t> serialize(const GlobalModel& model) {
  std::vector<std::uint8_t> out;
  serialize_into(model, out);
  return out;
}

MessageKind peek_kind(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  const Header h = read_header(r);
  if (h.kind != static_cast<std::uint16_t>(MessageKind::kWeightUpdate) &&
      h.kind != static_cast<std::uint16_t>(MessageKind::kGlobalModel)) {
    throw FormatError("wire: unknown message kind " + std::to_string(h.kind));
  }
  return static_cast<MessageKind>(h.kind);
}

std::optional<WirePeek> peek_header(const std::vector<std::uint8_t>& bytes) {
  try {
    Reader r(bytes);
    const Header h = read_header(r);
    if (h.kind != static_cast<std::uint16_t>(MessageKind::kWeightUpdate) &&
        h.kind != static_cast<std::uint16_t>(MessageKind::kGlobalModel)) {
      return std::nullopt;
    }
    WirePeek p;
    p.kind = static_cast<MessageKind>(h.kind);
    p.round = h.round;
    p.client = h.client;
    return p;
  } catch (const FormatError&) {
    return std::nullopt;
  }
}

void deserialize_update_into(const std::vector<std::uint8_t>& bytes,
                             WeightUpdate& out) {
  Reader r(bytes);
  const Header h = read_header(r);
  if (h.kind != static_cast<std::uint16_t>(MessageKind::kWeightUpdate)) {
    throw FormatError("wire: expected WeightUpdate");
  }
  if (h.codec == CodecKind::kQuantDense) {
    // Broadcast-leg encoding; no update path produces it, so arriving on an
    // update it can only be a forgery or corruption.
    throw FormatError("wire: kQuantDense is not a valid update codec");
  }
  out.client_id = h.client;
  out.round = h.round;
  out.sample_count = h.samples;
  out.train_loss = h.loss;
  if (h.codec == CodecKind::kAggSum) {
    out.is_delta = false;
    read_agg_payload(r, h, out);
    return;
  }
  // Clear stale aggregate state: `out` buffers are reused across decodes.
  // A forwarded aggregate mean re-announces its (saturated) leaf coverage
  // through the v2 agg_leaves field; leaf updates and v1 messages carry 0.
  out.agg_terms.clear();
  out.agg_contributors = h.agg_leaves;
  out.is_delta = read_payload(r, h, out.weights, t_index_scratch);
}

void serialize_aggregate_into(std::uint32_t round, std::int32_t client,
                              std::uint64_t samples, float loss,
                              std::uint64_t contributors,
                              std::uint64_t total_weight,
                              const std::vector<ExactTerm>& terms,
                              std::vector<std::uint8_t>& out) {
  EVFL_REQUIRE(total_weight > 0, "serialize_aggregate: zero total weight");
  const std::uint64_t dim = terms.size();
  out.clear();
  out.reserve(kWireHeaderBytesV2 + 16 + static_cast<std::size_t>(dim) * 16);
  Writer w(out);
  w.put(kWireMagic);
  w.put(kWireVersion2);
  w.put(static_cast<std::uint16_t>(MessageKind::kWeightUpdate));
  w.put(round);
  w.put(client);
  w.put(samples);
  w.put(loss);
  w.put(static_cast<std::uint8_t>(CodecKind::kAggSum));
  w.put(std::uint8_t{0});   // quant_bits
  w.put(std::uint16_t{0});  // reserved
  w.put(dim);
  w.put(dim);  // nnz == dim
  const std::size_t crc_pos = w.pos();
  w.put(std::uint32_t{0});  // CRC placeholder
  const std::size_t payload_pos = w.pos();
  w.put(contributors);
  w.put(total_weight);
  for (const ExactTerm t : terms) {
    const auto u = static_cast<unsigned __int128>(t);
    w.put(static_cast<std::uint64_t>(u));        // low word
    w.put(static_cast<std::uint64_t>(u >> 64));  // high word
  }
  w.patch_u32(crc_pos,
              crc32(out.data() + payload_pos, out.size() - payload_pos));
}

void deserialize_global_into(const std::vector<std::uint8_t>& bytes,
                             GlobalModel& out) {
  Reader r(bytes);
  const Header h = read_header(r);
  if (h.kind != static_cast<std::uint16_t>(MessageKind::kGlobalModel)) {
    throw FormatError("wire: expected GlobalModel");
  }
  if (h.codec != CodecKind::kDense && h.codec != CodecKind::kQuantDense) {
    // A delta-coded broadcast has no reference semantics: a client that
    // missed rounds (or just joined) could never reconstruct it.
    throw FormatError("wire: global model cannot be delta-coded");
  }
  out.round = h.round;
  const bool is_delta = read_payload(r, h, out.weights, t_index_scratch);
  EVFL_ASSERT(!is_delta, "global decode produced a delta");
}

WeightUpdate deserialize_update(const std::vector<std::uint8_t>& bytes) {
  WeightUpdate u;
  deserialize_update_into(bytes, u);
  return u;
}

GlobalModel deserialize_global(const std::vector<std::uint8_t>& bytes) {
  GlobalModel g;
  deserialize_global_into(bytes, g);
  return g;
}

}  // namespace evfl::fl
