#include "fl/serialize.hpp"

#include <array>
#include <cstring>

#include "common/error.hpp"

namespace evfl::fl {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint8_t buf[sizeof(T)];
    std::memcpy(buf, &v, sizeof(T));
    out_.insert(out_.end(), buf, buf + sizeof(T));
  }

  void put_floats(const std::vector<float>& values) {
    if (values.empty()) return;  // data() may be null for an empty vector
    const auto* p = reinterpret_cast<const std::uint8_t*>(values.data());
    out_.insert(out_.end(), p, p + values.size() * sizeof(float));
  }

 private:
  std::vector<std::uint8_t>& out_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& in) : in_(in) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > in_.size()) {
      throw FormatError("wire: truncated message");
    }
    T v;
    std::memcpy(&v, in_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::vector<float> get_floats(std::size_t count) {
    // Validate against remaining bytes BEFORE computing count*4: a corrupted
    // count field must produce FormatError, not a giant allocation or an
    // overflow-deflated size check.
    if (count > (in_.size() - pos_) / sizeof(float)) {
      throw FormatError("wire: truncated weight payload");
    }
    const std::size_t bytes = count * sizeof(float);
    std::vector<float> out(count);
    // Empty payloads are legal; memcpy's pointers must not be null.
    if (bytes != 0) std::memcpy(out.data(), in_.data() + pos_, bytes);
    pos_ += bytes;
    return out;
  }

  std::size_t pos() const { return pos_; }

 private:
  const std::vector<std::uint8_t>& in_;
  std::size_t pos_ = 0;
};

struct Header {
  std::uint16_t kind = 0;
  std::uint32_t round = 0;
  std::int32_t client = -1;
  std::uint64_t samples = 0;
  float loss = 0.0f;
  std::uint64_t count = 0;
  std::uint32_t crc = 0;
};

void write_message(std::vector<std::uint8_t>& out, MessageKind kind,
                   std::uint32_t round, std::int32_t client,
                   std::uint64_t samples, float loss,
                   const std::vector<float>& weights) {
  Writer w(out);
  w.put(kWireMagic);
  w.put(kWireVersion);
  w.put(static_cast<std::uint16_t>(kind));
  w.put(round);
  w.put(client);
  w.put(samples);
  w.put(loss);
  w.put(static_cast<std::uint64_t>(weights.size()));
  w.put(crc32(reinterpret_cast<const std::uint8_t*>(weights.data()),
              weights.size() * sizeof(float)));
  w.put_floats(weights);
}

Header read_header(Reader& r) {
  const auto magic = r.get<std::uint32_t>();
  if (magic != kWireMagic) throw FormatError("wire: bad magic");
  const auto version = r.get<std::uint16_t>();
  if (version != kWireVersion) {
    throw FormatError("wire: unsupported version " + std::to_string(version));
  }
  Header h;
  h.kind = r.get<std::uint16_t>();
  h.round = r.get<std::uint32_t>();
  h.client = r.get<std::int32_t>();
  h.samples = r.get<std::uint64_t>();
  h.loss = r.get<float>();
  h.count = r.get<std::uint64_t>();
  h.crc = r.get<std::uint32_t>();
  return h;
}

std::vector<float> read_payload(Reader& r, const Header& h) {
  std::vector<float> weights = r.get_floats(h.count);
  const std::uint32_t actual =
      crc32(reinterpret_cast<const std::uint8_t*>(weights.data()),
            weights.size() * sizeof(float));
  if (actual != h.crc) throw FormatError("wire: payload CRC mismatch");
  return weights;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> serialize(const WeightUpdate& update) {
  std::vector<std::uint8_t> out;
  out.reserve(40 + update.weights.size() * sizeof(float));
  write_message(out, MessageKind::kWeightUpdate, update.round,
                update.client_id, update.sample_count, update.train_loss,
                update.weights);
  return out;
}

std::vector<std::uint8_t> serialize(const GlobalModel& model) {
  std::vector<std::uint8_t> out;
  out.reserve(40 + model.weights.size() * sizeof(float));
  write_message(out, MessageKind::kGlobalModel, model.round, -1, 0, 0.0f,
                model.weights);
  return out;
}

MessageKind peek_kind(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  const Header h = read_header(r);
  if (h.kind != static_cast<std::uint16_t>(MessageKind::kWeightUpdate) &&
      h.kind != static_cast<std::uint16_t>(MessageKind::kGlobalModel)) {
    throw FormatError("wire: unknown message kind " + std::to_string(h.kind));
  }
  return static_cast<MessageKind>(h.kind);
}

std::optional<WirePeek> peek_header(const std::vector<std::uint8_t>& bytes) {
  try {
    Reader r(bytes);
    const Header h = read_header(r);
    if (h.kind != static_cast<std::uint16_t>(MessageKind::kWeightUpdate) &&
        h.kind != static_cast<std::uint16_t>(MessageKind::kGlobalModel)) {
      return std::nullopt;
    }
    WirePeek p;
    p.kind = static_cast<MessageKind>(h.kind);
    p.round = h.round;
    p.client = h.client;
    return p;
  } catch (const FormatError&) {
    return std::nullopt;
  }
}

WeightUpdate deserialize_update(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  const Header h = read_header(r);
  if (h.kind != static_cast<std::uint16_t>(MessageKind::kWeightUpdate)) {
    throw FormatError("wire: expected WeightUpdate");
  }
  WeightUpdate u;
  u.client_id = h.client;
  u.round = h.round;
  u.sample_count = h.samples;
  u.train_loss = h.loss;
  u.weights = read_payload(r, h);
  return u;
}

GlobalModel deserialize_global(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  const Header h = read_header(r);
  if (h.kind != static_cast<std::uint16_t>(MessageKind::kGlobalModel)) {
    throw FormatError("wire: expected GlobalModel");
  }
  GlobalModel g;
  g.round = h.round;
  g.weights = read_payload(r, h);
  return g;
}

}  // namespace evfl::fl
