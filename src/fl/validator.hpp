// Server-side sanitization of incoming WeightUpdates.
//
// The server must not trust what arrives off the wire: a Byzantine or
// faulty client can send NaN/Inf payloads, norm-inflated updates, stale
// round numbers, wrong-dimension weight vectors, or the same update twice.
// UpdateValidator filters a round's raw arrivals down to the set FedAvg may
// safely aggregate and reports exactly what it rejected, so drivers can
// surface per-round robustness counters.  Dimension rejection is
// unconditional (a mismatched vector is unaggregatable no matter what);
// the other rejections are configurable.
#pragma once

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "fl/weights.hpp"

namespace evfl::fl {

struct ValidatorConfig {
  /// Drop updates containing NaN or +/-Inf weights (one poisoned update
  /// would otherwise poison the whole global model).
  bool reject_nonfinite = true;
  /// Drop updates whose round number is not the server's current round —
  /// late stragglers and replayed messages must not leak into a later round.
  bool reject_stale = true;
  /// Keep only the first update per client id within a round.
  bool reject_duplicates = true;
  /// Clip the L2 norm of (update - global) to this value; 0 disables
  /// clipping.  Bounds the influence of finite-but-huge Byzantine updates.
  double max_update_norm = 0.0;
  /// Minimum accepted updates required to aggregate at all (quorum).  Below
  /// it the round is skipped: global weights stay unchanged.
  std::size_t min_updates = 1;
};

/// What happened to one round's raw arrivals.
struct RoundAudit {
  std::size_t received = 0;            // raw updates handed to the validator
  std::size_t accepted = 0;
  std::size_t rejected_nonfinite = 0;
  std::size_t rejected_stale = 0;
  std::size_t rejected_duplicate = 0;
  std::size_t rejected_dimension = 0;  // weight count != global model's
  std::size_t clipped = 0;             // accepted, but norm-clipped
  /// Subset of `clipped` that were *forwarded aggregates*: clipping one
  /// rescales a whole shard's mean and forfeits its exact int128 terms, so
  /// the event is worth watching separately from leaf clips.
  std::size_t clipped_aggregates = 0;
  bool quorum_met = true;

  std::size_t rejected() const {
    return rejected_nonfinite + rejected_stale + rejected_duplicate +
           rejected_dimension;
  }
};

class UpdateValidator {
 public:
  explicit UpdateValidator(ValidatorConfig cfg = {});

  const ValidatorConfig& config() const { return cfg_; }

  /// Filter `updates` against `expected_round` and the current global
  /// weights.  Accepted updates are returned (norm-clipped if configured);
  /// `audit` records every rejection.  Quorum is *reported*, not enforced —
  /// the caller decides what an under-quorum round means.
  std::vector<WeightUpdate> filter(std::vector<WeightUpdate> updates,
                                   std::uint32_t expected_round,
                                   const std::vector<float>& global_weights,
                                   RoundAudit& audit) const;

 private:
  ValidatorConfig cfg_;
};

/// Streaming form of the validator: one gate per round, updates admitted as
/// they arrive.  This is what lets an aggregator run in O(dim) memory — no
/// per-round buffering of every raw update.  `filter` above is implemented
/// on top of this, so both paths share one rule set.
class RoundGate {
 public:
  /// `global_weights` must outlive the gate (it is the clip reference).
  RoundGate(const ValidatorConfig& cfg, std::uint32_t expected_round,
            const std::vector<float>& global_weights);

  /// Apply the round's rules to `u` in arrival order.  Returns true when
  /// the update is accepted (possibly norm-clipped in place); false records
  /// the rejection in the audit.  Clipping a forwarded aggregate drops its
  /// exact terms — the float mean view is what gets rescaled, so exactness
  /// is forfeited for that update (clipping is already lossy by intent) —
  /// and counts it in `clipped_aggregates`.
  bool admit(WeightUpdate& u);

  /// Stamp accepted/quorum and return the audit.  Callable once per round.
  const RoundAudit& finish();

  const RoundAudit& audit() const { return audit_; }

 private:
  const ValidatorConfig& cfg_;
  std::uint32_t expected_round_;
  const std::vector<float>& global_weights_;
  RoundAudit audit_;
  std::unordered_set<int> seen_clients_;
  std::size_t accepted_ = 0;
};

/// True when every weight is finite.
bool all_finite(const std::vector<float>& weights);

}  // namespace evfl::fl
