// Federated-round orchestration behind one Driver interface.
//
// SyncDriver runs clients in deterministic order — the default for
// experiments, bit-reproducible given seeds.  Given a RunContext with a
// thread pool it trains the round's clients concurrently (one task per
// client) while keeping update aggregation in client order, so results
// stay bit-identical to the serial schedule and "simulated parallel
// seconds" becomes real wall-clock parallelism.  ThreadedDriver runs each
// client on its own std::thread communicating through the InMemoryNetwork,
// demonstrating (and testing) that the protocol tolerates concurrency,
// message loss, stragglers and Byzantine clients.  Both route every
// parameter exchange through the serialized wire format.
//
// Robustness model: each round has a deadline.  At the deadline the server
// aggregates whatever validated updates arrived (partial aggregation); the
// Server's UpdateValidator rejects stale/duplicate/non-finite updates and
// its quorum decides whether the round moves the global model at all.  An
// optional FaultInjector scripts crashes, stragglers, corruption,
// duplicates and replays for both drivers through one seed-deterministic
// plan.
#pragma once

#include <memory>
#include <vector>

#include "faults/fault_injector.hpp"
#include "fl/client.hpp"
#include "fl/network.hpp"
#include "fl/server.hpp"
#include "obs/round_telemetry.hpp"
#include "runtime/run_context.hpp"

namespace evfl::fl {

/// How the driver picks which clients participate each round.  Selection is
/// a pure hash of (seed, round, client_id) — independent of topology,
/// thread schedule, and driver choice, so the same policy samples the same
/// clients whether the fleet is flat, tree-sharded, sync, or threaded.
enum class SamplingMode {
  kAll,        // every client, every round (the historical behavior)
  kBernoulli,  // each client independently with probability `fraction`
  kFixedSize,  // exactly min(count, population) clients per round
};

struct SamplingPolicy {
  SamplingMode mode = SamplingMode::kAll;
  double fraction = 1.0;    // kBernoulli participation probability, (0, 1]
  std::size_t count = 0;    // kFixedSize cohort size, >= 1
  std::uint64_t seed = 17;
};

/// Uniform hash of (seed, round, client_id) into [0, 1) — the sampling
/// coin.  Splitmix-based, no state.
double sampling_hash01(std::uint64_t seed, std::uint32_t round, int client_id);

/// Indices into `ids` of the clients sampled for `round` under `policy`,
/// in ascending index order.  kFixedSize ranks clients by hash (ties by id)
/// and takes the smallest `count`.
std::vector<std::size_t> select_sampled(const SamplingPolicy& policy,
                                        std::uint32_t round,
                                        const std::vector<int>& ids);

/// Per-round protocol knobs shared by both drivers.
struct RoundPolicy {
  /// Hard per-round collection deadline: the server never waits longer than
  /// this for updates; stragglers past it are partially aggregated away.
  double round_deadline_ms = 120'000.0;
  /// Which clients participate each round.  Unsampled clients never receive
  /// the broadcast, so they can neither contribute nor time out.
  SamplingPolicy sampling;
};

struct RoundMetrics {
  std::uint32_t round = 0;
  float mean_train_loss = 0.0f;
  /// Updates accepted by the validator and aggregated this round.
  std::size_t updates_received = 0;
  double weight_delta = 0.0;     // L2 movement of the global model
  double wall_seconds = 0.0;
  /// Slowest client's local-training time this round: the round's duration
  /// under genuine client parallelism.
  double max_client_seconds = 0.0;
  /// Messages the (simulated) network lost this round — dropped broadcasts
  /// and dropped/undeliverable updates.  A lossy round degrades, it never
  /// aborts.
  std::size_t dropped_messages = 0;
  /// Arrivals the validator rejected: non-finite payloads, wrong-dimension
  /// payloads, and duplicate (client, round) sends.
  std::size_t rejected_updates = 0;
  /// Arrivals carrying a past round number (straggler or replay).
  std::size_t late_updates = 0;
  /// Clients that received this round's broadcast yet contributed no
  /// current-round update before the round closed (crashed, straggling, or
  /// their upload was lost).  Clients whose broadcast the network dropped
  /// are counted in dropped_messages, not here — and unsampled clients are
  /// counted nowhere: a client that was never asked cannot time out.
  std::size_t timed_out_clients = 0;
  /// Total clients the driver manages (the fleet size).
  std::size_t population = 0;
  /// Clients selected to participate this round (== population when
  /// sampling is kAll).
  std::size_t sampled_clients = 0;
};

struct FederatedRunResult {
  std::vector<RoundMetrics> rounds;
  std::vector<float> final_weights;
  NetworkStats network;
  double total_seconds = 0.0;
  /// Sum over rounds of max_client_seconds — training time a physically
  /// distributed deployment would observe (clients train concurrently).
  double simulated_parallel_seconds = 0.0;

  /// Per-run totals of the per-round robustness counters.
  std::size_t total_rejected_updates() const;
  std::size_t total_late_updates() const;
  std::size_t total_timed_out_clients() const;
};

/// Common interface over the execution models, so callers pick a driver at
/// runtime without caring how rounds are scheduled.
class Driver {
 public:
  virtual ~Driver() = default;
  virtual FederatedRunResult run(std::size_t rounds) = 0;
};

class SyncDriver : public Driver {
 public:
  /// `ctx` (optional, non-owning) supplies the thread pool for pool-backed
  /// rounds; nullptr or a serial context trains clients one at a time.  Its
  /// trace writer, when set, receives per-round and per-client-train spans.
  /// `injector` (optional, non-owning) scripts faults; it is also attached
  /// to the network so message-level faults (duplicates) apply.
  /// `telemetry` (optional, non-owning) receives one RoundTelemetry record
  /// per federated round.  `adversary` (optional, non-owning) poisons
  /// attacker-client updates after local training, before encoding — the
  /// point a compromised client controls in a real deployment.
  SyncDriver(Server& server, std::vector<std::unique_ptr<Client>>& clients,
             InMemoryNetwork& net, const runtime::RunContext* ctx = nullptr,
             const faults::FaultInjector* injector = nullptr,
             RoundPolicy policy = {},
             obs::RoundTelemetrySink* telemetry = nullptr,
             const AdversarySuite* adversary = nullptr);

  FederatedRunResult run(std::size_t rounds) override;

 private:
  Server* server_;
  std::vector<std::unique_ptr<Client>>* clients_;
  InMemoryNetwork* net_;
  const runtime::RunContext* ctx_;
  const faults::FaultInjector* injector_;
  RoundPolicy policy_;
  obs::RoundTelemetrySink* telemetry_;
  const AdversarySuite* adversary_;
};

class ThreadedDriver : public Driver {
 public:
  /// `ctx` is used only for its trace writer (worker threads schedule
  /// themselves); `telemetry` receives one RoundTelemetry per round;
  /// `adversary` is handed to every client's serve loop.
  ThreadedDriver(Server& server, std::vector<std::unique_ptr<Client>>& clients,
                 InMemoryNetwork& net,
                 const faults::FaultInjector* injector = nullptr,
                 const runtime::RunContext* ctx = nullptr,
                 obs::RoundTelemetrySink* telemetry = nullptr,
                 const AdversarySuite* adversary = nullptr);

  FederatedRunResult run(std::size_t rounds) override;

  /// Legacy overload: `collect_timeout_ms` is the per-round deadline.
  FederatedRunResult run(std::size_t rounds, double collect_timeout_ms);

  /// Rounds close at policy.round_deadline_ms — the server aggregates the
  /// validated partial set and never blocks past the deadline.
  FederatedRunResult run(std::size_t rounds, const RoundPolicy& policy);

 private:
  Server* server_;
  std::vector<std::unique_ptr<Client>>* clients_;
  InMemoryNetwork* net_;
  const faults::FaultInjector* injector_;
  const runtime::RunContext* ctx_;
  obs::RoundTelemetrySink* telemetry_;
  const AdversarySuite* adversary_;
};

}  // namespace evfl::fl
