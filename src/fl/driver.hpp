// Federated-round orchestration behind one Driver interface.
//
// SyncDriver runs clients in deterministic order — the default for
// experiments, bit-reproducible given seeds.  Given a RunContext with a
// thread pool it trains the round's clients concurrently (one task per
// client) while keeping update aggregation in client order, so results
// stay bit-identical to the serial schedule and "simulated parallel
// seconds" becomes real wall-clock parallelism.  ThreadedDriver runs each
// client on its own std::thread communicating through the InMemoryNetwork,
// demonstrating (and testing) that the protocol tolerates concurrency,
// message loss and stragglers.  Both route every parameter exchange
// through the serialized wire format.
#pragma once

#include <memory>
#include <vector>

#include "fl/client.hpp"
#include "fl/network.hpp"
#include "fl/server.hpp"
#include "runtime/run_context.hpp"

namespace evfl::fl {

struct RoundMetrics {
  std::uint32_t round = 0;
  float mean_train_loss = 0.0f;
  std::size_t updates_received = 0;
  double weight_delta = 0.0;     // L2 movement of the global model
  double wall_seconds = 0.0;
  /// Slowest client's local-training time this round: the round's duration
  /// under genuine client parallelism.
  double max_client_seconds = 0.0;
  /// Messages the (simulated) network lost this round — dropped broadcasts
  /// and dropped/undeliverable updates.  A lossy round degrades, it never
  /// aborts.
  std::size_t dropped_messages = 0;
};

struct FederatedRunResult {
  std::vector<RoundMetrics> rounds;
  std::vector<float> final_weights;
  NetworkStats network;
  double total_seconds = 0.0;
  /// Sum over rounds of max_client_seconds — training time a physically
  /// distributed deployment would observe (clients train concurrently).
  double simulated_parallel_seconds = 0.0;
};

/// Common interface over the execution models, so callers pick a driver at
/// runtime without caring how rounds are scheduled.
class Driver {
 public:
  virtual ~Driver() = default;
  virtual FederatedRunResult run(std::size_t rounds) = 0;
};

class SyncDriver : public Driver {
 public:
  /// `ctx` (optional, non-owning) supplies the thread pool for pool-backed
  /// rounds; nullptr or a serial context trains clients one at a time.
  SyncDriver(Server& server, std::vector<std::unique_ptr<Client>>& clients,
             InMemoryNetwork& net, const runtime::RunContext* ctx = nullptr);

  FederatedRunResult run(std::size_t rounds) override;

 private:
  Server* server_;
  std::vector<std::unique_ptr<Client>>* clients_;
  InMemoryNetwork* net_;
  const runtime::RunContext* ctx_;
};

class ThreadedDriver : public Driver {
 public:
  ThreadedDriver(Server& server, std::vector<std::unique_ptr<Client>>& clients,
                 InMemoryNetwork& net);

  FederatedRunResult run(std::size_t rounds) override;

  /// `collect_timeout_ms` bounds how long the server waits for each round's
  /// updates; stragglers past the deadline are skipped (FedAvg over the
  /// received subset).
  FederatedRunResult run(std::size_t rounds, double collect_timeout_ms);

 private:
  Server* server_;
  std::vector<std::unique_ptr<Client>>* clients_;
  InMemoryNetwork* net_;
};

}  // namespace evfl::fl
