// Federated-round orchestration.
//
// SyncDriver runs clients one at a time in deterministic order — the default
// for experiments, bit-reproducible given seeds.  ThreadedDriver runs each
// client on its own std::thread communicating through the InMemoryNetwork,
// demonstrating (and testing) that the protocol tolerates concurrency,
// message loss and stragglers.  Both routes every parameter exchange through
// the serialized wire format.
#pragma once

#include <memory>
#include <vector>

#include "fl/client.hpp"
#include "fl/network.hpp"
#include "fl/server.hpp"

namespace evfl::fl {

struct RoundMetrics {
  std::uint32_t round = 0;
  float mean_train_loss = 0.0f;
  std::size_t updates_received = 0;
  double weight_delta = 0.0;     // L2 movement of the global model
  double wall_seconds = 0.0;
  /// Slowest client's local-training time this round: the round's duration
  /// under genuine client parallelism.
  double max_client_seconds = 0.0;
};

struct FederatedRunResult {
  std::vector<RoundMetrics> rounds;
  std::vector<float> final_weights;
  NetworkStats network;
  double total_seconds = 0.0;
  /// Sum over rounds of max_client_seconds — training time a physically
  /// distributed deployment would observe (clients train concurrently).
  double simulated_parallel_seconds = 0.0;
};

class SyncDriver {
 public:
  SyncDriver(Server& server, std::vector<std::unique_ptr<Client>>& clients,
             InMemoryNetwork& net);

  FederatedRunResult run(std::size_t rounds);

 private:
  Server* server_;
  std::vector<std::unique_ptr<Client>>* clients_;
  InMemoryNetwork* net_;
};

class ThreadedDriver {
 public:
  ThreadedDriver(Server& server, std::vector<std::unique_ptr<Client>>& clients,
                 InMemoryNetwork& net);

  /// `collect_timeout_ms` bounds how long the server waits for each round's
  /// updates; stragglers past the deadline are skipped (FedAvg over the
  /// received subset).
  FederatedRunResult run(std::size_t rounds,
                         double collect_timeout_ms = 120'000.0);

 private:
  Server* server_;
  std::vector<std::unique_ptr<Client>>* clients_;
  InMemoryNetwork* net_;
};

}  // namespace evfl::fl
