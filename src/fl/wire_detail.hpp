// Byte-level helpers shared by the wire implementation TUs (serialize.cpp
// writes/reads both wire versions; codec.cpp writes v2 compressed payloads).
// Internal to src/fl — not part of the public evfl::fl surface.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "nn/quant.hpp"

namespace evfl::fl::wire_detail {

/// Little-endian appender over a caller-owned byte vector.  The vector is
/// reused across messages (capacity is retained), so steady-state encoding
/// does not allocate.
class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint8_t buf[sizeof(T)];
    std::memcpy(buf, &v, sizeof(T));
    out_.insert(out_.end(), buf, buf + sizeof(T));
  }

  void put_bytes(const std::uint8_t* data, std::size_t size) {
    if (size == 0) return;  // data may be null for an empty buffer
    out_.insert(out_.end(), data, data + size);
  }

  void put_floats(const float* values, std::size_t count) {
    put_bytes(reinterpret_cast<const std::uint8_t*>(values),
              count * sizeof(float));
  }

  std::size_t pos() const { return out_.size(); }

  /// Overwrite a previously written u32 (the payload CRC is computed after
  /// the payload is assembled, then patched into the header).
  void patch_u32(std::size_t pos, std::uint32_t v) {
    std::memcpy(out_.data() + pos, &v, sizeof(v));
  }

 private:
  std::vector<std::uint8_t>& out_;
};

/// Bounds-checked little-endian cursor; every overrun is a FormatError,
/// never UB.
class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& in) : in_(in) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (sizeof(T) > remaining()) {
      throw FormatError("wire: truncated message");
    }
    T v;
    std::memcpy(&v, in_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  /// Read `count` floats into `out` (resized; capacity reused).  Validates
  /// against remaining bytes BEFORE computing count*4: a corrupted count
  /// field must produce FormatError, not a giant allocation or an
  /// overflow-deflated size check.
  void get_floats_into(std::size_t count, std::vector<float>& out) {
    if (count > remaining() / sizeof(float)) {
      throw FormatError("wire: truncated weight payload");
    }
    const std::size_t bytes = count * sizeof(float);
    out.resize(count);
    // Empty payloads are legal; memcpy's pointers must not be null.
    if (bytes != 0) std::memcpy(out.data(), in_.data() + pos_, bytes);
    pos_ += bytes;
  }

  const std::uint8_t* cursor() const { return in_.data() + pos_; }
  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return in_.size() - pos_; }

  void require(std::size_t bytes, const char* what) {
    if (bytes > remaining()) throw FormatError(std::string("wire: ") + what);
  }

  void skip(std::size_t bytes) {
    require(bytes, "truncated message");
    pos_ += bytes;
  }

 private:
  const std::vector<std::uint8_t>& in_;
  std::size_t pos_ = 0;
};

/// Symmetric quantization grid, shared with the serving engine's weight
/// quantization (nn/quant.hpp): b bits store integers in [-qmax, qmax].
using nn::quant_qmax;

/// Wire bytes for `count` packed `bits`-wide values (4-bit values pack two
/// per byte, low nibble first).
inline std::size_t packed_bytes(std::uint64_t count, int bits) {
  return static_cast<std::size_t>((count * static_cast<std::uint64_t>(bits) +
                                   7) / 8);
}

}  // namespace evfl::fl::wire_detail
