#include "fl/aggregator.hpp"

#include "common/error.hpp"
#include "fl/serialize.hpp"

namespace evfl::fl {

Aggregator::Aggregator(std::vector<float> initial_weights, FedAvgConfig cfg,
                       ValidatorConfig validator_cfg, CodecConfig codec)
    : weights_(std::move(initial_weights)),
      cfg_(cfg),
      validator_(validator_cfg),
      codec_(codec) {
  EVFL_REQUIRE(!weights_.empty(), "aggregator needs non-empty initial weights");
}

GlobalModel Aggregator::broadcast() const {
  return GlobalModel{round_, weights_};
}

const std::vector<std::uint8_t>& Aggregator::broadcast_wire() {
  encode_global(round_, weights_, codec_, wire_buf_);
  has_lossy_reference_ = broadcast_is_lossy(codec_);
  if (has_lossy_reference_) {
    deserialize_global_into(wire_buf_, decoded_broadcast_);
  }
  return wire_buf_;
}

void Aggregator::adopt(std::uint32_t round, const std::vector<float>& weights) {
  EVFL_REQUIRE(weights.size() == weights_.size(),
               "adopt: weight dimension mismatch");
  gate_.reset();  // abort any open round — a new broadcast supersedes it
  weights_ = weights;
  round_ = round;
  has_lossy_reference_ = false;
}

void Aggregator::open_round() {
  gate_.emplace(validator_.config(), round_, weights_);
  accum_.reset(weights_.size());
  if (cfg_.rule != AggregationRule::kMean) {
    robust_buf_.reset(weights_.size(), cfg_.robust_buffer_cap);
  }
  samples_accum_ = 0;
  loss_accum_ = 0.0;
}

void Aggregator::offer(WeightUpdate u) {
  if (!gate_) open_round();
  if (!gate_->admit(u)) return;

  // The delta basis is what the clients decoded, not what the server holds:
  // under a lossy broadcast those differ, and re-materializing against the
  // decoded copy makes the downlink quantization error cancel exactly.
  const std::vector<float>& reference =
      has_lossy_reference_ ? decoded_broadcast_.weights : weights_;
  if (u.is_delta) {
    EVFL_ASSERT(u.weights.size() == reference.size(),
                "validated delta has wrong dimension");
    for (std::size_t i = 0; i < u.weights.size(); ++i) {
      u.weights[i] += reference[i];
    }
    u.is_delta = false;
  }

  std::uint64_t fold_weight;
  if (!u.agg_terms.empty()) {
    // Forwarded partial aggregate: fold the exact shard sums.  Cumulative
    // sample count makes two-level weighting equal flat weighting.
    EVFL_REQUIRE(u.agg_terms.size() == accum_.dim(),
                 "offer: aggregate term dimension mismatch");
    fold_weight = cfg_.weighted_by_samples ? u.sample_count
                                           : u.agg_contributors;
    EVFL_REQUIRE(fold_weight > 0, "offer: aggregate update with zero weight");
    accum_.add_terms(u.agg_terms, fold_weight, u.agg_contributors);
  } else {
    EVFL_REQUIRE(!cfg_.weighted_by_samples || u.sample_count > 0,
                 "offer: sample-weighted update with zero samples");
    // A clipped aggregate lost its exact terms but still stands in for
    // agg_contributors leaves under unweighted averaging.
    const std::uint64_t unweighted =
        u.agg_contributors > 0 ? u.agg_contributors : 1;
    fold_weight = cfg_.weighted_by_samples ? u.sample_count : unweighted;
    const bool is_leaf = u.agg_contributors == 0;
    if (cfg_.rule != AggregationRule::kMean && is_leaf && !robust_buf_.full()) {
      // Robust mode buffers leaves for the order-statistic reduction at
      // close.  Forwarded aggregates (robust at their own tier) and any
      // overflow past the buffer cap keep folding into the exact mean.
      robust_buf_.add(u.weights, fold_weight);
    } else {
      accum_.add_update(u.weights, fold_weight);
    }
  }
  samples_accum_ += u.sample_count;
  loss_accum_ +=
      static_cast<double>(fold_weight) * static_cast<double>(u.train_loss);
}

double Aggregator::close_round() {
  if (!gate_) open_round();  // empty round: audit over zero arrivals
  last_audit_ = gate_->finish();
  gate_.reset();
  ++round_;
  has_lossy_reference_ = false;
  if (last_audit_.accepted == 0 || !last_audit_.quorum_met) return 0.0;

  if (cfg_.rule == AggregationRule::kMean || robust_buf_.count() == 0) {
    accum_.mean(next_scratch_);
  } else {
    // The movement basis for kNormBoundedMean is the weights the round
    // opened with — still in weights_ until the swap below.
    robust_buf_.aggregate(cfg_, &weights_, robust_scratch_);
    if (accum_.total_weight() == 0) {
      next_scratch_.assign(robust_scratch_.begin(), robust_scratch_.end());
    } else {
      // Robust leaf reduction + exactly-folded shard aggregates, combined
      // by total FedAvg weight.
      accum_.mean(next_scratch_);
      const double wr = static_cast<double>(robust_buf_.total_weight());
      const double wm = static_cast<double>(accum_.total_weight());
      for (std::size_t i = 0; i < next_scratch_.size(); ++i) {
        next_scratch_[i] = static_cast<float>(
            (wr * static_cast<double>(robust_scratch_[i]) +
             wm * static_cast<double>(next_scratch_[i])) /
            (wr + wm));
      }
    }
  }
  const double delta = l2_distance(weights_, next_scratch_);
  std::swap(weights_, next_scratch_);
  return delta;
}

std::uint64_t Aggregator::accepted_contributors() const {
  // robust_buf_ is untouched (count 0) under kMean; post-close it still
  // holds the closed round's contents, matching accumulated()'s lifetime.
  return accum_.contributors() + robust_buf_.count();
}

std::uint64_t Aggregator::accepted_weight() const {
  return accum_.total_weight() + robust_buf_.total_weight();
}

double Aggregator::finish_round(std::vector<WeightUpdate> updates) {
  if (!gate_) open_round();
  for (WeightUpdate& u : updates) offer(std::move(u));
  return close_round();
}

float Aggregator::accepted_loss() const {
  const std::uint64_t tw = accepted_weight();
  if (tw == 0) return 0.0f;
  return static_cast<float>(loss_accum_ / static_cast<double>(tw));
}

// ---- EdgeAggregator ---------------------------------------------------------

EdgeAggregator::EdgeAggregator(std::int32_t id,
                               std::vector<float> initial_weights,
                               FedAvgConfig fedavg,
                               ValidatorConfig validator_cfg,
                               CodecConfig shard_codec,
                               CodecConfig upstream_codec)
    : id_(id),
      core_(std::move(initial_weights), fedavg, validator_cfg, shard_codec),
      upstream_codec_(upstream_codec),
      upstream_encoder_(upstream_codec) {}

void EdgeAggregator::begin_round(const std::vector<std::uint8_t>& parent_wire) {
  deserialize_global_into(parent_wire, parent_model_);
  core_.adopt(parent_model_.round, parent_model_.weights);
  // The delta basis toward the parent is what *we* decoded — under a lossy
  // parent broadcast that is exactly the reference the parent will
  // re-materialize against.
  parent_reference_ = parent_model_.weights;
}

const std::vector<std::uint8_t>& EdgeAggregator::shard_broadcast_wire() {
  return core_.broadcast_wire();
}

const std::vector<std::uint8_t>* EdgeAggregator::forward_wire() {
  const std::uint32_t closed_round = core_.round();
  core_.close_round();
  const RoundAudit& audit = core_.last_audit();
  // Per-tier quorum: a shard that collected nothing aggregatable forwards
  // nothing — the parent just sees one fewer child (partial aggregation).
  if (audit.accepted == 0 || !audit.quorum_met) return nullptr;

  if (upstream_codec_.kind == CodecKind::kDense &&
      core_.rule() == AggregationRule::kMean) {
    // Exact path: ship the raw fixed-point sums.  The parent's fold is then
    // bit-identical to having aggregated this shard's leaves directly.  A
    // robust rule has no exact sum to ship — its reduction is an order
    // statistic, not a linear fold — so it takes the mean-update path below.
    const FedAccumulator& acc = core_.accumulated();
    serialize_aggregate_into(closed_round, id_, core_.accepted_samples(),
                             core_.accepted_loss(), acc.contributors(),
                             acc.total_weight(), acc.terms(), up_buf_);
    return &up_buf_;
  }

  // Lossy upstream — or a robust shard reduction: forward the shard result
  // as a regular update (the edge is just another client from the parent's
  // perspective, error-feedback residual and all).  agg_contributors > 0
  // marks it as an aggregate so a robust parent folds it instead of
  // re-buffering it against the leaf order statistics.
  WeightUpdate up;
  up.client_id = id_;
  up.round = closed_round;
  up.sample_count = core_.accepted_samples();
  up.train_loss = core_.accepted_loss();
  up.weights = core_.weights();  // close_round left the shard result here
  up.agg_contributors = core_.accepted_contributors();
  upstream_encoder_.encode(up, parent_reference_, up_buf_);
  return &up_buf_;
}

}  // namespace evfl::fl
