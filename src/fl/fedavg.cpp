#include "fl/fedavg.hpp"

#include "common/error.hpp"

namespace evfl::fl {

std::vector<float> fed_avg(const std::vector<WeightUpdate>& updates,
                           const FedAvgConfig& cfg) {
  EVFL_REQUIRE(!updates.empty(), "fed_avg: no updates");
  const std::size_t dim = updates.front().weights.size();
  EVFL_REQUIRE(dim > 0, "fed_avg: empty weight vectors");

  double total_weight = 0.0;
  for (const WeightUpdate& u : updates) {
    if (u.weights.size() != dim) {
      throw Error("fed_avg: weight dimension mismatch (client " +
                  std::to_string(u.client_id) + ")");
    }
    const double w =
        cfg.weighted_by_samples ? static_cast<double>(u.sample_count) : 1.0;
    EVFL_REQUIRE(!cfg.weighted_by_samples || u.sample_count > 0,
                 "fed_avg: sample-weighted update with zero samples");
    total_weight += w;
  }
  EVFL_ASSERT(total_weight > 0.0, "fed_avg: zero total weight");

  // Accumulate in double: three clients is forgiving, but ablations sweep
  // to many more and float accumulation would drift.
  std::vector<double> acc(dim, 0.0);
  for (const WeightUpdate& u : updates) {
    const double w =
        (cfg.weighted_by_samples ? static_cast<double>(u.sample_count) : 1.0) /
        total_weight;
    for (std::size_t i = 0; i < dim; ++i) {
      acc[i] += w * static_cast<double>(u.weights[i]);
    }
  }
  std::vector<float> out(dim);
  for (std::size_t i = 0; i < dim; ++i) out[i] = static_cast<float>(acc[i]);
  return out;
}

}  // namespace evfl::fl
