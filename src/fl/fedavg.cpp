#include "fl/fedavg.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "common/error.hpp"

namespace evfl::fl {
namespace {

// 2^64 as a double — exact (power of two), so the multiply below only
// rescales the exponent and the truncating cast supplies the one rounding
// step.  Faster than std::ldexp in the hot per-element loop.
constexpr double kFixedScale = 18446744073709551616.0;

// ±2^114: wire-term clamp bound.
constexpr ExactTerm kWireTermCap = static_cast<ExactTerm>(1) << 114;

}  // namespace

std::string to_string(AggregationRule rule) {
  switch (rule) {
    case AggregationRule::kMean: return "mean";
    case AggregationRule::kTrimmedMean: return "trimmed_mean";
    case AggregationRule::kCoordinateMedian: return "median";
    case AggregationRule::kNormBoundedMean: return "norm_bounded";
    case AggregationRule::kMultiKrum: return "multi_krum";
  }
  return "unknown";
}

AggregationRule parse_aggregation_rule(const std::string& name) {
  if (name == "mean") return AggregationRule::kMean;
  if (name == "trimmed_mean") return AggregationRule::kTrimmedMean;
  if (name == "median") return AggregationRule::kCoordinateMedian;
  if (name == "norm_bounded") return AggregationRule::kNormBoundedMean;
  if (name == "multi_krum") return AggregationRule::kMultiKrum;
  throw Error("unknown aggregation rule: '" + name +
              "' (expected mean|trimmed_mean|median|norm_bounded|multi_krum)");
}

ExactTerm clamp_wire_term(ExactTerm t) {
  if (t > kWireTermCap) return kWireTermCap;
  if (t < -kWireTermCap) return -kWireTermCap;
  return t;
}

ExactTerm to_fixed(double term) {
  // NaN would be UB on the integer cast; map it to zero deterministically.
  // The validator rejects non-finite updates before they reach aggregation,
  // so this only matters when validation is explicitly disabled.
  if (std::isnan(term)) return 0;
  if (term > kExactTermCap) term = kExactTermCap;
  if (term < -kExactTermCap) term = -kExactTermCap;
  return static_cast<ExactTerm>(term * kFixedScale);  // truncates toward zero
}

void FedAccumulator::reset(std::size_t dim) {
  acc_.assign(dim, 0);
  total_weight_ = 0;
  contributors_ = 0;
}

void FedAccumulator::add_update(const std::vector<float>& weights,
                                std::uint64_t w) {
  EVFL_REQUIRE(weights.size() == acc_.size(),
               "FedAccumulator: dimension mismatch");
  EVFL_REQUIRE(w > 0, "FedAccumulator: zero update weight");
  const double wd = static_cast<double>(w);
  for (std::size_t i = 0; i < acc_.size(); ++i) {
    acc_[i] += to_fixed(wd * static_cast<double>(weights[i]));
  }
  EVFL_REQUIRE(total_weight_ + w >= total_weight_,
               "FedAccumulator: total weight overflow");
  total_weight_ += w;
  contributors_ += 1;
}

void FedAccumulator::add_terms(const std::vector<ExactTerm>& terms,
                               std::uint64_t added_weight,
                               std::uint64_t contributors) {
  EVFL_REQUIRE(terms.size() == acc_.size(),
               "FedAccumulator: aggregate dimension mismatch");
  EVFL_REQUIRE(added_weight > 0, "FedAccumulator: zero aggregate weight");
  for (std::size_t i = 0; i < acc_.size(); ++i) {
    acc_[i] += clamp_wire_term(terms[i]);
  }
  EVFL_REQUIRE(total_weight_ + added_weight >= total_weight_,
               "FedAccumulator: total weight overflow");
  total_weight_ += added_weight;
  contributors_ += contributors;
}

void FedAccumulator::mean(std::vector<float>& out) const {
  EVFL_REQUIRE(total_weight_ > 0, "FedAccumulator: mean of empty accumulator");
  out.resize(acc_.size());
  const double tw = static_cast<double>(total_weight_);
  for (std::size_t i = 0; i < acc_.size(); ++i) {
    // (double)__int128 rounds to nearest on GCC/Clang — deterministic.
    const double sum = std::ldexp(static_cast<double>(acc_[i]), -64);
    out[i] = static_cast<float>(sum / tw);
  }
}

// ---- RobustBuffer -----------------------------------------------------------

void RobustBuffer::reset(std::size_t dim, std::size_t cap) {
  EVFL_REQUIRE(dim > 0, "RobustBuffer: zero dimension");
  EVFL_REQUIRE(cap > 0, "RobustBuffer: zero capacity");
  dim_ = dim;
  cap_ = cap;
  count_ = 0;
  total_weight_ = 0;
  // Rows are overwritten by add(); no need to clear — only shrink-to-fit
  // would lose the reuse guarantee, so never do that here.
}

void RobustBuffer::add(const std::vector<float>& weights, std::uint64_t w) {
  EVFL_REQUIRE(weights.size() == dim_, "RobustBuffer: dimension mismatch");
  EVFL_REQUIRE(w > 0, "RobustBuffer: zero update weight");
  EVFL_REQUIRE(!full(), "RobustBuffer: add past capacity");
  const std::size_t base = count_ * dim_;
  if (rows_.size() < base + dim_) rows_.resize(base + dim_);
  std::copy(weights.begin(), weights.end(), rows_.begin() + base);
  if (row_w_.size() < count_ + 1) row_w_.resize(count_ + 1);
  row_w_[count_] = w;
  EVFL_REQUIRE(total_weight_ + w >= total_weight_,
               "RobustBuffer: total weight overflow");
  total_weight_ += w;
  ++count_;
}

void RobustBuffer::weighted_mean_of(const std::vector<std::size_t>& rows,
                                    std::vector<float>& out) const {
  double tw = 0.0;
  for (const std::size_t r : rows) tw += static_cast<double>(row_w_[r]);
  out.assign(dim_, 0.0f);
  for (std::size_t d = 0; d < dim_; ++d) {
    double acc = 0.0;
    for (const std::size_t r : rows) {
      acc += static_cast<double>(row_w_[r]) *
             static_cast<double>(rows_[r * dim_ + d]);
    }
    out[d] = static_cast<float>(acc / tw);
  }
}

void RobustBuffer::trimmed_mean(std::size_t trim_each_side,
                                std::vector<float>& out) const {
  // Per coordinate: sort the column, drop `trim_each_side` values from each
  // end, average the survivors with equal votes.  With k >= f colluding
  // attackers pushing the same direction, all f poisoned values land in one
  // tail and are removed.
  const std::size_t n = count_;
  const std::size_t keep = n - 2 * trim_each_side;
  out.resize(dim_);
  col_.resize(n);
  for (std::size_t d = 0; d < dim_; ++d) {
    for (std::size_t r = 0; r < n; ++r) col_[r] = rows_[r * dim_ + d];
    std::sort(col_.begin(), col_.end());
    double acc = 0.0;
    for (std::size_t r = trim_each_side; r < trim_each_side + keep; ++r) {
      acc += static_cast<double>(col_[r]);
    }
    out[d] = static_cast<float>(acc / static_cast<double>(keep));
  }
}

void RobustBuffer::norm_bounded_mean(const FedAvgConfig& cfg,
                                     const std::vector<float>* reference,
                                     std::vector<float>& out) const {
  // Movement norm of each buffered update against the reference.
  const std::size_t n = count_;
  norms_.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    double sq = 0.0;
    for (std::size_t d = 0; d < dim_; ++d) {
      double v = static_cast<double>(rows_[r * dim_ + d]);
      if (reference) v -= static_cast<double>((*reference)[d]);
      sq += v * v;
    }
    norms_[r] = std::sqrt(sq);
  }
  // Static bound if configured; otherwise adapt to the round's *median*
  // movement norm.  Unlike the validator's fixed clip — which an attacker
  // can sit just beneath — the median moves with the honest majority.
  double bound = cfg.norm_bound;
  if (!(bound > 0.0)) {
    col_.resize(n);
    for (std::size_t r = 0; r < n; ++r) col_[r] = static_cast<float>(norms_[r]);
    std::sort(col_.begin(), col_.end());
    bound = (n % 2 == 1)
                ? static_cast<double>(col_[n / 2])
                : 0.5 * (static_cast<double>(col_[n / 2 - 1]) +
                         static_cast<double>(col_[n / 2]));
  }
  out.assign(dim_, 0.0f);
  double tw = 0.0;
  for (std::size_t r = 0; r < n; ++r) tw += static_cast<double>(row_w_[r]);
  for (std::size_t d = 0; d < dim_; ++d) {
    double acc = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      double v = static_cast<double>(rows_[r * dim_ + d]);
      if (reference) v -= static_cast<double>((*reference)[d]);
      if (bound > 0.0 && norms_[r] > bound) v *= bound / norms_[r];
      acc += static_cast<double>(row_w_[r]) * v;
    }
    double mean = acc / tw;
    if (reference) mean += static_cast<double>((*reference)[d]);
    out[d] = static_cast<float>(mean);
  }
}

void RobustBuffer::multi_krum(const FedAvgConfig& cfg,
                              std::vector<float>& out) const {
  const std::size_t n = count_;
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  if (n < 4) {
    // Krum's score needs n - f - 2 >= 1 with f >= 1; below that there is
    // no meaningful consistency ranking — fall back to the plain mean.
    weighted_mean_of(order_, out);
    return;
  }
  std::size_t f = cfg.krum_assumed_byzantine;
  if (f == 0) f = (n - 3) / 2;            // max tolerable by the bound
  if (f > (n - 3) / 2) f = (n - 3) / 2;   // keep n - f - 2 >= 1
  const std::size_t neighbours = n - f - 2;

  // score_i = sum of the `neighbours` smallest squared distances to the
  // other updates; colluders are mutually close but far from the honest
  // cluster, so with f < n/2 the honest cluster wins the ranking.
  scores_.resize(n);
  norms_.resize(n);  // reused as the per-row distance scratch
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t m = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      double sq = 0.0;
      for (std::size_t d = 0; d < dim_; ++d) {
        const double diff = static_cast<double>(rows_[i * dim_ + d]) -
                            static_cast<double>(rows_[j * dim_ + d]);
        sq += diff * diff;
      }
      norms_[m++] = sq;
    }
    std::nth_element(norms_.begin(), norms_.begin() + (neighbours - 1),
                     norms_.begin() + static_cast<std::ptrdiff_t>(m));
    double s = 0.0;
    for (std::size_t k = 0; k < neighbours; ++k) s += norms_[k];
    scores_[i] = s;
  }

  std::size_t select = cfg.krum_select > 0 ? cfg.krum_select : n - f;
  if (select > n) select = n;
  // Deterministic tie-break on index keeps the rule hash-reproducible.
  std::sort(order_.begin(), order_.end(),
            [this](std::size_t a, std::size_t b) {
              if (scores_[a] != scores_[b]) return scores_[a] < scores_[b];
              return a < b;
            });
  order_.resize(select);
  weighted_mean_of(order_, out);
}

void RobustBuffer::aggregate(const FedAvgConfig& cfg,
                             const std::vector<float>* reference,
                             std::vector<float>& out) const {
  EVFL_REQUIRE(count_ > 0, "RobustBuffer: aggregate over empty buffer");
  EVFL_REQUIRE(!reference || reference->size() == dim_,
               "RobustBuffer: reference dimension mismatch");
  switch (cfg.rule) {
    case AggregationRule::kMean: {
      order_.resize(count_);
      std::iota(order_.begin(), order_.end(), std::size_t{0});
      weighted_mean_of(order_, out);
      return;
    }
    case AggregationRule::kTrimmedMean: {
      std::size_t k = static_cast<std::size_t>(
          cfg.trim_fraction * static_cast<double>(count_));
      if (2 * k >= count_) k = (count_ - 1) / 2;  // keep >= 1 survivor
      trimmed_mean(k, out);
      return;
    }
    case AggregationRule::kCoordinateMedian:
      // The median is the maximally-trimmed mean.
      trimmed_mean((count_ - 1) / 2, out);
      return;
    case AggregationRule::kNormBoundedMean:
      norm_bounded_mean(cfg, reference, out);
      return;
    case AggregationRule::kMultiKrum:
      multi_krum(cfg, out);
      return;
  }
  throw Error("RobustBuffer: unknown aggregation rule");
}

std::vector<float> fed_avg(const std::vector<WeightUpdate>& updates,
                           const FedAvgConfig& cfg,
                           const std::vector<float>* reference) {
  EVFL_REQUIRE(!updates.empty(), "fed_avg: no updates");
  const std::size_t dim = updates.front().weights.size();
  EVFL_REQUIRE(dim > 0, "fed_avg: empty weight vectors");

  const bool robust = cfg.rule != AggregationRule::kMean;
  FedAccumulator acc;
  acc.reset(dim);
  RobustBuffer buf;
  if (robust) buf.reset(dim, cfg.robust_buffer_cap);
  for (const WeightUpdate& u : updates) {
    if (u.weights.size() != dim) {
      throw Error("fed_avg: weight dimension mismatch (client " +
                  std::to_string(u.client_id) + ")");
    }
    if (!u.agg_terms.empty()) {
      // Forwarded partial aggregate: fold the exact shard sums.  Cumulative
      // sample count makes two-level weighting equal flat weighting.  Under
      // a robust rule the shard was already robust at its own tier, so the
      // fold stays a plain weighted mean.
      EVFL_REQUIRE(u.agg_terms.size() == dim,
                   "fed_avg: aggregate term dimension mismatch");
      const std::uint64_t w =
          cfg.weighted_by_samples ? u.sample_count : u.agg_contributors;
      EVFL_REQUIRE(w > 0, cfg.weighted_by_samples
                              ? "fed_avg: aggregate update with zero samples"
                              : "fed_avg: aggregate update with zero "
                                "contributors");
      acc.add_terms(u.agg_terms, w, u.agg_contributors);
    } else {
      EVFL_REQUIRE(!cfg.weighted_by_samples || u.sample_count > 0,
                   "fed_avg: sample-weighted update with zero samples");
      // A clipped aggregate arrives here with its exact terms dropped but
      // agg_contributors intact — it still stands in for that many leaves
      // under unweighted averaging.
      const std::uint64_t unweighted =
          u.agg_contributors > 0 ? u.agg_contributors : 1;
      const std::uint64_t w =
          cfg.weighted_by_samples ? u.sample_count : unweighted;
      const bool is_leaf = u.agg_contributors == 0;
      if (robust && is_leaf && !buf.full()) {
        buf.add(u.weights, w);
      } else {
        // kMean, a (clipped) forwarded aggregate, or buffer overflow past
        // the cap — fold into the exact accumulator.
        acc.add_update(u.weights, w);
      }
    }
  }

  std::vector<float> out;
  if (!robust || buf.count() == 0) {
    acc.mean(out);
    return out;
  }
  buf.aggregate(cfg, reference, out);
  if (acc.total_weight() > 0) {
    // Combine the robust leaf reduction with the folded aggregates by total
    // FedAvg weight ("robust-per-shard, fold upstream").
    std::vector<float> folded;
    acc.mean(folded);
    const double wr = static_cast<double>(buf.total_weight());
    const double wm = static_cast<double>(acc.total_weight());
    for (std::size_t d = 0; d < dim; ++d) {
      out[d] = static_cast<float>((wr * static_cast<double>(out[d]) +
                                   wm * static_cast<double>(folded[d])) /
                                  (wr + wm));
    }
  }
  return out;
}

}  // namespace evfl::fl
