#include "fl/fedavg.hpp"

#include <cmath>
#include <string>

#include "common/error.hpp"

namespace evfl::fl {
namespace {

// 2^64 as a double — exact (power of two), so the multiply below only
// rescales the exponent and the truncating cast supplies the one rounding
// step.  Faster than std::ldexp in the hot per-element loop.
constexpr double kFixedScale = 18446744073709551616.0;

// ±2^114: wire-term clamp bound.
constexpr ExactTerm kWireTermCap = static_cast<ExactTerm>(1) << 114;

}  // namespace

ExactTerm clamp_wire_term(ExactTerm t) {
  if (t > kWireTermCap) return kWireTermCap;
  if (t < -kWireTermCap) return -kWireTermCap;
  return t;
}

ExactTerm to_fixed(double term) {
  // NaN would be UB on the integer cast; map it to zero deterministically.
  // The validator rejects non-finite updates before they reach aggregation,
  // so this only matters when validation is explicitly disabled.
  if (std::isnan(term)) return 0;
  if (term > kExactTermCap) term = kExactTermCap;
  if (term < -kExactTermCap) term = -kExactTermCap;
  return static_cast<ExactTerm>(term * kFixedScale);  // truncates toward zero
}

void FedAccumulator::reset(std::size_t dim) {
  acc_.assign(dim, 0);
  total_weight_ = 0;
  contributors_ = 0;
}

void FedAccumulator::add_update(const std::vector<float>& weights,
                                std::uint64_t w) {
  EVFL_REQUIRE(weights.size() == acc_.size(),
               "FedAccumulator: dimension mismatch");
  EVFL_REQUIRE(w > 0, "FedAccumulator: zero update weight");
  const double wd = static_cast<double>(w);
  for (std::size_t i = 0; i < acc_.size(); ++i) {
    acc_[i] += to_fixed(wd * static_cast<double>(weights[i]));
  }
  EVFL_REQUIRE(total_weight_ + w >= total_weight_,
               "FedAccumulator: total weight overflow");
  total_weight_ += w;
  contributors_ += 1;
}

void FedAccumulator::add_terms(const std::vector<ExactTerm>& terms,
                               std::uint64_t added_weight,
                               std::uint64_t contributors) {
  EVFL_REQUIRE(terms.size() == acc_.size(),
               "FedAccumulator: aggregate dimension mismatch");
  EVFL_REQUIRE(added_weight > 0, "FedAccumulator: zero aggregate weight");
  for (std::size_t i = 0; i < acc_.size(); ++i) {
    acc_[i] += clamp_wire_term(terms[i]);
  }
  EVFL_REQUIRE(total_weight_ + added_weight >= total_weight_,
               "FedAccumulator: total weight overflow");
  total_weight_ += added_weight;
  contributors_ += contributors;
}

void FedAccumulator::mean(std::vector<float>& out) const {
  EVFL_REQUIRE(total_weight_ > 0, "FedAccumulator: mean of empty accumulator");
  out.resize(acc_.size());
  const double tw = static_cast<double>(total_weight_);
  for (std::size_t i = 0; i < acc_.size(); ++i) {
    // (double)__int128 rounds to nearest on GCC/Clang — deterministic.
    const double sum = std::ldexp(static_cast<double>(acc_[i]), -64);
    out[i] = static_cast<float>(sum / tw);
  }
}

std::vector<float> fed_avg(const std::vector<WeightUpdate>& updates,
                           const FedAvgConfig& cfg) {
  EVFL_REQUIRE(!updates.empty(), "fed_avg: no updates");
  const std::size_t dim = updates.front().weights.size();
  EVFL_REQUIRE(dim > 0, "fed_avg: empty weight vectors");

  FedAccumulator acc;
  acc.reset(dim);
  for (const WeightUpdate& u : updates) {
    if (u.weights.size() != dim) {
      throw Error("fed_avg: weight dimension mismatch (client " +
                  std::to_string(u.client_id) + ")");
    }
    if (!u.agg_terms.empty()) {
      // Forwarded partial aggregate: fold the exact shard sums.  Cumulative
      // sample count makes two-level weighting equal flat weighting.
      EVFL_REQUIRE(u.agg_terms.size() == dim,
                   "fed_avg: aggregate term dimension mismatch");
      const std::uint64_t w =
          cfg.weighted_by_samples ? u.sample_count : u.agg_contributors;
      EVFL_REQUIRE(w > 0, cfg.weighted_by_samples
                              ? "fed_avg: aggregate update with zero samples"
                              : "fed_avg: aggregate update with zero "
                                "contributors");
      acc.add_terms(u.agg_terms, w, u.agg_contributors);
    } else {
      EVFL_REQUIRE(!cfg.weighted_by_samples || u.sample_count > 0,
                   "fed_avg: sample-weighted update with zero samples");
      // A clipped aggregate arrives here with its exact terms dropped but
      // agg_contributors intact — it still stands in for that many leaves
      // under unweighted averaging.
      const std::uint64_t unweighted =
          u.agg_contributors > 0 ? u.agg_contributors : 1;
      acc.add_update(u.weights,
                     cfg.weighted_by_samples ? u.sample_count : unweighted);
    }
  }
  std::vector<float> out;
  acc.mean(out);
  return out;
}

}  // namespace evfl::fl
