#include "fl/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

#include "common/error.hpp"
#include "data/scaler.hpp"
#include "data/window.hpp"
#include "fl/serialize.hpp"

namespace evfl::fl {

namespace {

/// Salt separating a leaf's model/shuffle RNG stream from its data stream
/// (both derive from the spec's series_seed, so a leaf re-materialized in a
/// later round trains identically).
constexpr std::uint64_t kLeafModelSalt = 0xBF58476D1CE4E5B9ull;

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

}  // namespace

FleetDriver::FleetDriver(Aggregator& root,
                         std::vector<datagen::ClientSpec> fleet,
                         ModelFactory factory, FleetDriverConfig cfg,
                         const runtime::RunContext* ctx,
                         const faults::FaultInjector* injector,
                         obs::RoundTelemetrySink* telemetry)
    : root_(&root),
      fleet_(std::move(fleet)),
      factory_(std::move(factory)),
      cfg_(cfg),
      ctx_(ctx),
      injector_(injector),
      telemetry_(telemetry) {
  EVFL_REQUIRE(!fleet_.empty(), "FleetDriver: empty fleet");
  EVFL_REQUIRE(cfg_.edges >= 1, "FleetDriver: need at least one edge");
  EVFL_REQUIRE(cfg_.lookback >= 1 && cfg_.lookback < 48,
               "FleetDriver: lookback must fit the shortest series (48h)");

  const std::size_t leaves = fleet_.size();
  const std::size_t edge_count = std::min(cfg_.edges, leaves);

  // Edge codecs: the shard-facing broadcast reuses the root's downlink codec
  // (so every tier broadcasts the same way), while the edge->root uplink
  // reuses the leaves' upload codec.  Both default to kDense == exact.
  edges_.reserve(edge_count);
  for (std::size_t e = 0; e < edge_count; ++e) {
    edges_.push_back(std::make_unique<EdgeAggregator>(
        edge_node_id(e), root_->weights(), cfg_.fedavg, cfg_.edge_validator,
        root_->codec(), cfg_.client.codec));
  }

  // Contiguous block shards: leaf i belongs to edge i*E/L.  The partition
  // depends only on (i, E, L), so the same fleet re-shards deterministically.
  shard_of_.resize(leaves);
  ids_.resize(leaves);
  for (std::size_t i = 0; i < leaves; ++i) {
    shard_of_[i] = i * edge_count / leaves;
    ids_[i] = fleet_[i].id;
  }
}

FederatedRunResult FleetDriver::run(std::size_t rounds) {
  const std::size_t leaves = fleet_.size();
  const std::size_t edge_count = edges_.size();
  const std::size_t dim = root_->weights().size();
  const std::uint64_t logical_msg =
      kWireHeaderBytesV1 + static_cast<std::uint64_t>(dim) * sizeof(float);

  FederatedRunResult result;
  result.rounds.reserve(rounds);
  const double run_start = now_seconds();

  // One mutex per edge: leaf tasks of the same shard serialize only their
  // offer() call; training runs fully parallel.
  std::unique_ptr<std::mutex[]> edge_mutex(new std::mutex[edge_count]);

  for (std::size_t r = 0; r < rounds; ++r) {
    const double round_start = now_seconds();
    const std::uint32_t round_no = root_->round();
    RoundMetrics rm;
    rm.round = round_no;
    rm.population = leaves;

    const std::vector<std::size_t> sampled =
        select_sampled(cfg_.sampling, round_no, ids_);
    rm.sampled_clients = sampled.size();

    // --- tier 1: root -> edges -----------------------------------------
    std::vector<char> edge_alive(edge_count, 1);
    for (std::size_t e = 0; e < edge_count; ++e) {
      if (injector_ != nullptr &&
          injector_->should_crash(edge_node_id(e), round_no)) {
        edge_alive[e] = 0;  // this shard goes dark for the whole round
      }
    }

    const std::vector<std::uint8_t>& root_wire = root_->broadcast_wire();
    std::uint64_t bytes_down = 0, bytes_up = 0;
    std::uint64_t logical_down = 0, logical_up = 0;
    std::uint64_t messages = 0;
    std::vector<const std::vector<std::uint8_t>*> shard_wire(edge_count,
                                                             nullptr);
    std::vector<GlobalModel> shard_model(edge_count);
    for (std::size_t e = 0; e < edge_count; ++e) {
      if (!edge_alive[e]) continue;
      edges_[e]->begin_round(root_wire);
      bytes_down += root_wire.size();
      logical_down += logical_msg;
      ++messages;
      // One shared read-only broadcast buffer per shard — every sampled
      // leaf of the shard reads this same buffer and this same decode.
      shard_wire[e] = &edges_[e]->shard_broadcast_wire();
      deserialize_global_into(*shard_wire[e], shard_model[e]);
    }

    // --- tier 2: edges -> sampled leaves -------------------------------
    std::size_t reached = 0;
    for (const std::size_t i : sampled) {
      const std::size_t e = shard_of_[i];
      if (!edge_alive[e]) {
        ++rm.dropped_messages;  // the shard's broadcast never went out
        continue;
      }
      ++reached;
      bytes_down += shard_wire[e]->size();
      logical_down += logical_msg;
      ++messages;
    }

    std::vector<double> leaf_seconds(sampled.size(), 0.0);
    std::vector<float> leaf_loss(sampled.size(), 0.0f);
    std::vector<std::uint64_t> leaf_up_bytes(sampled.size(), 0);
    std::vector<char> leaf_offered(sampled.size(), 0);

    const auto leaf_task = [&](std::size_t k) {
      const std::size_t i = sampled[k];
      const std::size_t e = shard_of_[i];
      if (!edge_alive[e]) return;  // already counted as dropped
      const datagen::ClientSpec& spec = fleet_[i];
      if (injector_ != nullptr && injector_->should_crash(spec.id, round_no)) {
        return;  // reached but silent: times out below
      }

      // Lazy materialization: series -> scaler -> windows -> model live
      // only inside this task, so peak memory tracks the worker-pool
      // width, not the fleet size.
      data::TimeSeries series = datagen::materialize_series(spec);
      data::MinMaxScaler scaler;
      scaler.fit(series.values);
      const std::vector<float> scaled = scaler.transform(series.values);
      data::SequenceDataset ds =
          data::make_forecast_sequences(scaled, cfg_.lookback);
      // Data poisoning happens on the freshly materialized training set, so
      // the poisoned update flows through the *real* training path.
      if (cfg_.adversary != nullptr) {
        cfg_.adversary->poison_labels(spec.id, round_no, ds.x, ds.y);
      }
      tensor::Rng rng(spec.series_seed ^ kLeafModelSalt);
      Client client(spec.id, std::move(ds.x), std::move(ds.y), factory_,
                    cfg_.client, std::move(rng));
      if (ctx_ != nullptr) ctx_->count("fleet.clients_materialized");

      WeightUpdate u = client.train_round(shard_model[e]);
      if (cfg_.adversary != nullptr) {
        cfg_.adversary->poison_update(u, shard_model[e].weights);
      }
      leaf_seconds[k] = client.last_train_seconds();
      leaf_loss[k] = u.train_loss;

      double elapsed_ms = client.last_train_seconds() * 1e3;
      if (injector_ != nullptr) {
        elapsed_ms += injector_->straggler_delay_ms(spec.id, round_no);
        injector_->corrupt_update(u);
      }
      if (elapsed_ms > cfg_.round_deadline_ms) return;  // straggler: too late

      const std::vector<std::uint8_t>& wire =
          client.encode_update(u, shard_model[e].weights);
      leaf_up_bytes[k] = wire.size();
      WeightUpdate decoded;
      deserialize_update_into(wire, decoded);
      {
        std::lock_guard<std::mutex> lock(edge_mutex[e]);
        edges_[e]->offer(std::move(decoded));
      }
      leaf_offered[k] = 1;
    };

    if (ctx_ != nullptr && ctx_->parallel()) {
      ctx_->parallel_for(sampled.size(), 1,
                         [&](std::size_t begin, std::size_t end) {
                           for (std::size_t k = begin; k < end; ++k) {
                             leaf_task(k);
                           }
                         });
    } else {
      for (std::size_t k = 0; k < sampled.size(); ++k) leaf_task(k);
    }

    // Deterministic (index-order) reductions after the barrier.
    std::size_t offered = 0;
    double loss_sum = 0.0;
    for (std::size_t k = 0; k < sampled.size(); ++k) {
      rm.max_client_seconds = std::max(rm.max_client_seconds, leaf_seconds[k]);
      if (leaf_offered[k] != 0) {
        ++offered;
        loss_sum += static_cast<double>(leaf_loss[k]);
        bytes_up += leaf_up_bytes[k];
        logical_up += logical_msg;
        ++messages;
      }
    }
    rm.mean_train_loss =
        offered > 0 ? static_cast<float>(loss_sum / offered) : 0.0f;
    rm.timed_out_clients = reached - offered;

    // --- tier 1 close: edges forward, root aggregates ------------------
    std::size_t clipped = 0, clipped_aggregates = 0;
    std::size_t nonfinite = 0, stale = 0, duplicate = 0, dimension = 0;
    for (std::size_t e = 0; e < edge_count; ++e) {
      if (!edge_alive[e]) continue;
      const std::vector<std::uint8_t>* fw = edges_[e]->forward_wire();
      const RoundAudit& audit = edges_[e]->last_audit();
      rm.updates_received += audit.accepted;  // leaf-level acceptance
      nonfinite += audit.rejected_nonfinite;
      stale += audit.rejected_stale;
      duplicate += audit.rejected_duplicate;
      dimension += audit.rejected_dimension;
      clipped += audit.clipped;
      clipped_aggregates += audit.clipped_aggregates;
      if (fw == nullptr) continue;  // under per-tier quorum: partial round
      bytes_up += fw->size();
      logical_up += logical_msg;
      ++messages;
      WeightUpdate up;
      deserialize_update_into(*fw, up);
      root_->offer(std::move(up));
    }
    rm.weight_delta = root_->close_round();
    const RoundAudit& root_audit = root_->last_audit();
    nonfinite += root_audit.rejected_nonfinite;
    stale += root_audit.rejected_stale;
    duplicate += root_audit.rejected_duplicate;
    dimension += root_audit.rejected_dimension;
    clipped += root_audit.clipped;
    clipped_aggregates += root_audit.clipped_aggregates;
    rm.rejected_updates = nonfinite + duplicate + dimension;
    rm.late_updates = stale;
    rm.wall_seconds = now_seconds() - round_start;

    result.network.messages_sent += messages;
    result.network.messages_dropped += rm.dropped_messages;
    result.network.bytes_sent += bytes_down + bytes_up;
    result.simulated_parallel_seconds += rm.max_client_seconds;

    if (telemetry_ != nullptr) {
      obs::RoundTelemetry rt;
      rt.round = rm.round;
      rt.wall_seconds = rm.wall_seconds;
      rt.max_client_seconds = rm.max_client_seconds;
      rt.client_train_seconds = leaf_seconds;
      rt.bytes_down = bytes_down;
      rt.bytes_up = bytes_up;
      rt.logical_bytes_down = logical_down;
      rt.logical_bytes_up = logical_up;
      rt.updates_accepted = rm.updates_received;
      rt.rejected_updates = rm.rejected_updates;
      rt.late_updates = rm.late_updates;
      rt.dropped_messages = rm.dropped_messages;
      rt.timed_out_clients = rm.timed_out_clients;
      rt.population = rm.population;
      rt.sampled_clients = rm.sampled_clients;
      rt.rejected_nonfinite = nonfinite;
      rt.rejected_stale = stale;
      rt.rejected_duplicate = duplicate;
      rt.rejected_dimension = dimension;
      rt.clipped = clipped;
      rt.clipped_aggregates = clipped_aggregates;
      rt.quorum_met = root_audit.quorum_met;
      telemetry_->record(std::move(rt));
    }

    result.rounds.push_back(rm);
  }

  result.final_weights = root_->weights();
  result.total_seconds = now_seconds() - run_start;
  return result;
}

}  // namespace evfl::fl
