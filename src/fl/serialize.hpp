// Wire format for federated messages.
//
// Every parameter exchange crosses this byte boundary even when server and
// clients share a process: it keeps the "only model parameters are
// exchanged" property enforceable and testable, and gives the communication
// metrics real payload sizes.
//
// Two wire versions coexist (decoders accept both):
//
// v1 — dense fp32, the lossless default (little-endian):
//   magic   u32  'EVFL' (0x4C465645)
//   version u16  = 1
//   kind    u16  (1 = WeightUpdate, 2 = GlobalModel)
//   round   u32
//   client  i32  (-1 for GlobalModel)
//   samples u64
//   loss    f32
//   count   u64  (number of float weights)
//   crc32   u32  (over the weight payload bytes)
//   payload count * f32
//
// v2 — compressed payloads (see fl/codec.hpp for the codec semantics).  The
// header shares the v1 prefix through `client`, so peek_header works on
// either version without knowing which arrived:
//   magic   u32  'EVFL'
//   version u16  = 2
//   kind    u16
//   round   u32
//   client  i32
//   samples u64
//   loss    f32
//   codec      u8   (CodecKind)
//   quant_bits u8   (0 unless the codec quantizes; else 4 or 8)
//   agg_leaves u16  (saturated count of leaves behind a forwarded aggregate
//                    *mean* — a robust shard reduction, or an exact shard
//                    mean shipped through a lossy upstream codec; 0 for leaf
//                    updates, broadcasts, and kAggSum, whose exact count
//                    rides in the payload.  Nonzero outside a non-kAggSum
//                    WeightUpdate is rejected.)
//   dim     u64  (logical weight count of the decoded vector)
//   nnz     u64  (entries on the wire; == dim for dense codecs)
//   crc32   u32  (over the payload bytes)
//   payload — by codec:
//     kDelta:     nnz * f32 delta values (nnz == dim)
//     kTopK:      nnz * u32 strictly-increasing indices, then nnz * f32
//     kTopKQuant: nnz * u32 indices, ceil(nnz/256) * f32 block scales,
//                 then nnz packed signed quant_bits-wide values
//     kQuantDense:ceil(dim/256) * f32 block scales, then dim packed values
//     kAggSum:    u64 contributors, u64 total_weight, then dim * i128
//                 fixed-point partial sums (two u64 words each, low first,
//                 two's complement).  nnz == dim; `samples` in the header is
//                 the shard's cumulative sample count, `loss` its weighted
//                 mean train loss.  Decodes into WeightUpdate::agg_terms
//                 plus a float mean view in `weights` so validator rules
//                 (dimension, norm) still apply.
//
// Decoders throw evfl::FormatError on bad magic/version/kind/codec/CRC/
// size.  v2 delta payloads decode into WeightUpdate::weights with
// is_delta = true — materialized dense, so the validator's non-finite /
// dimension / movement-norm rules always run on the decoded update.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fl/weights.hpp"

namespace evfl::fl {

inline constexpr std::uint32_t kWireMagic = 0x4C465645;  // "EVFL"
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::uint16_t kWireVersion2 = 2;

/// Fixed header sizes (bytes) — what the dense-equivalent "logical bytes"
/// telemetry and the size-formula tests count with.
inline constexpr std::size_t kWireHeaderBytesV1 = 40;
inline constexpr std::size_t kWireHeaderBytesV2 = 52;

/// Upper bound on the logical weight count a decoder will materialize.  The
/// CRC covers only the payload, so a corrupted v2 `dim` field could
/// otherwise demand an arbitrarily large dense allocation before any
/// integrity check can fail.
inline constexpr std::uint64_t kMaxWireDim = 1ull << 28;  // 1 GiB of fp32

enum class MessageKind : std::uint16_t {
  kWeightUpdate = 1,
  kGlobalModel = 2,
};

/// CRC-32 (IEEE 802.3, reflected) of a byte buffer.  Slice-by-8: processes
/// eight bytes per table round instead of one — the checksum runs over
/// every payload twice per message (sender and receiver), so it is on the
/// wire hot path.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

std::vector<std::uint8_t> serialize(const WeightUpdate& update);
std::vector<std::uint8_t> serialize(const GlobalModel& model);

/// Buffer-reusing variants (v1 layout): `out` is cleared, then filled; its
/// capacity is retained across calls so steady-state serialization does not
/// allocate.
void serialize_into(const WeightUpdate& update, std::vector<std::uint8_t>& out);
void serialize_into(const GlobalModel& model, std::vector<std::uint8_t>& out);

/// Serialize an edge aggregator's exact partial sum as a v2 kAggSum update
/// (buffer-reusing).  `terms` are the accumulator's raw fixed-point sums,
/// `total_weight` its divisor (mode-dependent: Σ samples or Σ 1), `samples`
/// the shard's cumulative sample count, `contributors` its accepted leaves.
void serialize_aggregate_into(std::uint32_t round, std::int32_t client,
                              std::uint64_t samples, float loss,
                              std::uint64_t contributors,
                              std::uint64_t total_weight,
                              const std::vector<ExactTerm>& terms,
                              std::vector<std::uint8_t>& out);

/// Peek at the message kind without full decoding; throws FormatError on
/// malformed headers.
MessageKind peek_kind(const std::vector<std::uint8_t>& bytes);

/// Header fields visible without decoding the payload — what the simulated
/// network needs to apply per-(sender, round) fault rules.
struct WirePeek {
  MessageKind kind = MessageKind::kWeightUpdate;
  std::uint32_t round = 0;
  std::int32_t client = -1;
};

/// Non-throwing header peek; std::nullopt on anything malformed.  Works on
/// both wire versions (the peeked prefix is layout-identical).
std::optional<WirePeek> peek_header(const std::vector<std::uint8_t>& bytes);

/// Decoders throw evfl::FormatError on bad magic/version/kind/CRC/size.
WeightUpdate deserialize_update(const std::vector<std::uint8_t>& bytes);
GlobalModel deserialize_global(const std::vector<std::uint8_t>& bytes);

/// Buffer-reusing decoders: `out`'s vectors are resized in place (capacity
/// retained), so a steady-state decode loop does not allocate.
void deserialize_update_into(const std::vector<std::uint8_t>& bytes,
                             WeightUpdate& out);
void deserialize_global_into(const std::vector<std::uint8_t>& bytes,
                             GlobalModel& out);

}  // namespace evfl::fl
