// Wire format for federated messages.
//
// Every parameter exchange crosses this byte boundary even when server and
// clients share a process: it keeps the "only model parameters are
// exchanged" property enforceable and testable, and gives the communication
// metrics real payload sizes.
//
// Layout (little-endian):
//   magic   u32  'EVFL' (0x4C465645)
//   version u16
//   kind    u16  (1 = WeightUpdate, 2 = GlobalModel)
//   round   u32
//   client  i32  (-1 for GlobalModel)
//   samples u64
//   loss    f32
//   count   u64  (number of float weights)
//   crc32   u32  (over the weight payload bytes)
//   payload count * f32
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fl/weights.hpp"

namespace evfl::fl {

inline constexpr std::uint32_t kWireMagic = 0x4C465645;  // "EVFL"
inline constexpr std::uint16_t kWireVersion = 1;

enum class MessageKind : std::uint16_t {
  kWeightUpdate = 1,
  kGlobalModel = 2,
};

/// CRC-32 (IEEE 802.3, reflected) of a byte buffer.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

std::vector<std::uint8_t> serialize(const WeightUpdate& update);
std::vector<std::uint8_t> serialize(const GlobalModel& model);

/// Peek at the message kind without full decoding; throws FormatError on
/// malformed headers.
MessageKind peek_kind(const std::vector<std::uint8_t>& bytes);

/// Header fields visible without decoding the payload — what the simulated
/// network needs to apply per-(sender, round) fault rules.
struct WirePeek {
  MessageKind kind = MessageKind::kWeightUpdate;
  std::uint32_t round = 0;
  std::int32_t client = -1;
};

/// Non-throwing header peek; std::nullopt on anything malformed.
std::optional<WirePeek> peek_header(const std::vector<std::uint8_t>& bytes);

/// Decoders throw evfl::FormatError on bad magic/version/kind/CRC/size.
WeightUpdate deserialize_update(const std::vector<std::uint8_t>& bytes);
GlobalModel deserialize_global(const std::vector<std::uint8_t>& bytes);

}  // namespace evfl::fl
