// evfl::stream — continuous-ingestion anomaly detection (DESIGN.md §14).
//
// The batch pipeline (core/pipeline) detects anomalies after the fact: it
// windows a finished series, scores every window, computes one threshold
// from the whole score vector, and repairs flagged segments with full
// lookahead.  A deployed detector sees none of that — samples arrive one
// at a time per zone, thresholds have to adapt without rescanning history,
// and repair can only use the past.  StreamPipeline is that online
// counterpart, built from the same parts:
//
//   - per-zone sliding windows (ring of the last `lookback` scaled values)
//     feed the batched forecast::Engine (DESIGN.md §13); ingest() only
//     enqueues, flush() scores all pending samples in cross-zone batches,
//     one sample per zone per engine round (intra-zone order matters:
//     repairing sample t changes the window sample t+1 is scored against);
//   - a zone whose window holds fewer than `lookback` samples — at zone
//     start and after every churn gap — is NOT scored ("not ready", a
//     counted outcome).  Zero-padding the window instead would hand the
//     LSTM a fabricated history and fire spurious anomalies at every zone
//     (re)start;
//   - thresholds are anomaly::IncrementalThreshold state per zone (P²
//     quantile / Welford / reservoir-MAD behind the same ThresholdRule as
//     the batch rule), seedable from calibration scores and freezable for
//     strict batch equivalence; an optional anomaly::DriftProbe per zone
//     re-seeds the estimator from its trailing window when the score
//     distribution shifts faster than winsorized adaptation tracks
//     (DESIGN.md §15);
//   - online repair applies the paper's linear interpolation at the live
//     window edge via anomaly::impute_segments: with no future anchor the
//     repair holds the nearest trustworthy left neighbour, and the
//     repaired value — not the anomalous raw one — extends the window;
//   - anomaly events leave through a BoundedQueue with drop-oldest
//     back-pressure and shrink-on-drain (queue.hpp), so a stalled consumer
//     costs bounded memory and a counted drop, never an unbounded buffer.
//
// The per-zone state machine itself (window fill/churn, repair, decision,
// adaptation, drift) lives in stream/zone_state.hpp, shared verbatim with
// the sharded multi-core runtime (stream/sharded.hpp).
//
// Determinism: the engine's exact tier applies only to fp32 batches of
// exactly 1, so a round that happens to have one ready zone would score on
// a different tier than a multi-zone round and batch scoring.  The stream
// therefore pads 1-row rounds to 2 rows (row 0 duplicated, second output
// ignored) so every streamed score is a wide-tier score, and batch_scores()
// applies the same rule — a frozen-threshold stream replay of a series is
// bit-identical to the batch detector (tests/test_stream.cpp pins this).
//
// Threading: ingest()/flush()/add_zone()/stats() belong to one producer
// thread; drain() and queue_dropped() may run concurrently from consumer
// threads (the queue carries its own lock).  After warmup, ingest() and
// flush() perform no heap allocations on the clean path (bench_stream
// --check-allocs pins the steady state; repairing a flagged sample may
// allocate transiently inside the shared imputation routine).
#pragma once

#include <cstdint>
#include <vector>

#include "anomaly/threshold.hpp"
#include "data/scaler.hpp"
#include "forecast/engine.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "runtime/run_context.hpp"
#include "stream/queue.hpp"
#include "stream/zone_state.hpp"
#include "tensor/tensor3.hpp"

namespace evfl::stream {

struct StreamConfig {
  /// Upper bound on add_zone() calls; sizes the staging tensor (the engine
  /// must accept batches of max(2, max_zones)).
  std::size_t max_zones = 16;
  /// Threshold rule every zone's incremental estimator runs.
  anomaly::ThresholdRule threshold{};
  /// Fold each finite score into the zone's estimator after the flag
  /// decision (the decision always uses the pre-observation threshold).
  /// Flagged scores fold in winsorized — clamped at twice the threshold
  /// that flagged them — so genuine drift can still raise the threshold
  /// but an anomaly burst cannot drag the null-distribution estimate up
  /// past later attacks.  Frozen zones never adapt regardless.
  bool adapt_thresholds = true;
  /// Repair flagged (and non-finite) samples at the window edge before
  /// they extend the window.  Disable for strict batch equivalence.
  bool repair_inputs = true;
  /// Drift-triggered threshold re-seeding (anomaly::DriftProbe): when the
  /// mean of the last `drift_window` folded scores sits more than
  /// `drift_z` standard errors from the pre-window baseline, the zone's
  /// estimator is rebuilt from that window instead of adapting one P²
  /// step at a time.  0 disables the probe (the PR 9 behavior).  Frozen
  /// zones never re-seed.
  double drift_z = 0.0;
  std::size_t drift_window = 64;
  /// Event queue hard bound (drop-oldest beyond it) and post-drain storage
  /// watermark.
  std::size_t queue_max = 4096;
  std::size_t queue_shrink = 1024;
  /// ingest() auto-flushes once this many samples are pending.
  std::size_t flush_batch = 256;
};

class StreamPipeline {
 public:
  /// The engine must outlive the pipeline and accept batches of
  /// max(2, cfg.max_zones).  `registry` (optional) receives
  /// stream.queue_depth / stream.events_dropped gauges,
  /// stream.samples_total / events_total / not_ready_total / gaps_total /
  /// reseeds_total counters and a stream.flush_seconds histogram; `trace`
  /// (optional) gets one span per flush.  Both must outlive the pipeline.
  StreamPipeline(forecast::Engine& engine, const StreamConfig& cfg,
                 obs::Registry* registry = nullptr,
                 obs::TraceWriter* trace = nullptr);

  StreamPipeline(const StreamPipeline&) = delete;
  StreamPipeline& operator=(const StreamPipeline&) = delete;

  /// Register a zone with its fitted scaler; returns the zone id ingest()
  /// expects.  Zones start empty (not ready) with no threshold: until
  /// seeded/frozen or enough scores adapt one in, nothing is flagged.
  std::uint32_t add_zone(const data::MinMaxScaler& scaler);

  /// Fold calibration scores (e.g. a clean prefix scored by batch_scores)
  /// into the zone's estimator and arm the threshold.
  void seed_threshold(std::uint32_t zone, const std::vector<float>& scores);

  /// Pin the zone's threshold to a fixed value; it never adapts (or
  /// re-seeds) afterwards (the strict batch-equivalence mode).
  void freeze_threshold(std::uint32_t zone, float threshold);

  /// Enqueue one sample.  `t` is the zone's sample clock: any step other
  /// than last_t + 1 is churn (gap or restart) and resets the zone's
  /// window to not-ready at processing time.  Auto-flushes once
  /// cfg.flush_batch samples are pending (using the context from
  /// set_run_context, serial by default).
  void ingest(std::uint32_t zone, std::uint64_t t, float value);

  /// Score every pending sample in cross-zone engine rounds; returns how
  /// many samples were processed (scored + not-ready).
  std::size_t flush(const runtime::RunContext* ctx = nullptr);

  /// Context auto-flushes score with (not owned; may be nullptr).
  void set_run_context(const runtime::RunContext* ctx) { run_ctx_ = ctx; }

  /// Move every queued event into `out` (arrival order); thread-safe
  /// against the producer.  Returns the number appended.
  std::size_t drain(std::vector<AnomalyEvent>& out);

  StreamStats stats() const;

  std::size_t zones() const { return zones_.size(); }
  std::size_t pending() const { return pending_total_; }
  /// Window holds a full lookback (the next in-order sample gets scored).
  bool ready(std::uint32_t zone) const;
  /// Current effective threshold; NaN while the zone is unarmed.
  float threshold(std::uint32_t zone) const;
  const anomaly::IncrementalThreshold& estimator(std::uint32_t zone) const;
  std::size_t lookback() const { return lookback_; }
  std::uint64_t queue_dropped() const { return queue_.dropped(); }

 private:
  const detail::ZoneState& zone_at(std::uint32_t zone) const;
  void publish_telemetry();

  forecast::Engine& engine_;
  StreamConfig cfg_;
  detail::ZonePolicy policy_;
  std::size_t lookback_;

  std::vector<detail::ZoneState> zones_;
  std::size_t pending_total_ = 0;
  const runtime::RunContext* run_ctx_ = nullptr;

  // Warm flush-round scratch: staging tensor, engine output, the
  // per-round record of which zone/sample each staged row belongs to,
  // and the per-round event staging the bounded queue is fed from.
  tensor::Tensor3 staging_;
  std::vector<float> scores_;
  std::vector<std::uint32_t> row_zone_;
  std::vector<detail::PendingSample> row_sample_;
  std::vector<float> row_scaled_;
  std::vector<AnomalyEvent> round_events_;

  detail::RepairScratch repair_;

  BoundedQueue<AnomalyEvent> queue_;
  StreamStats stats_;
  StreamStats published_;  // counter values already added to the registry

  obs::TraceWriter* trace_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Gauge* dropped_gauge_ = nullptr;
  obs::Counter* samples_counter_ = nullptr;
  obs::Counter* events_counter_ = nullptr;
  obs::Counter* not_ready_counter_ = nullptr;
  obs::Counter* gaps_counter_ = nullptr;
  obs::Counter* reseeds_counter_ = nullptr;
  obs::Histogram* flush_hist_ = nullptr;
};

/// Score every complete window of an already-scaled series the way the
/// stream does: out[i] = (forecast(window starting at i) - series[i +
/// lookback])², batched through the engine with the same pad-to-2 rule, so
/// every score is a wide-tier score.  A frozen-threshold StreamPipeline
/// replay of `series` flags exactly the samples whose batch_scores() entry
/// exceeds the threshold.  Returns series.size() - lookback scores.
std::vector<float> batch_scores(forecast::Engine& engine,
                                const std::vector<float>& series,
                                const runtime::RunContext* ctx = nullptr);

}  // namespace evfl::stream
