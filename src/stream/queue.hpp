// BoundedQueue — the export side of the streaming detection pipeline
// (DESIGN.md §14): a mutex-guarded ring with explicit back-pressure,
// following the pack/flush/shrink discipline of bounded metric exporters
// (the InfluxStream exemplar, SNIPPETS.md Snippet 1).
//
//  - push() past `max` drops the OLDEST entry and counts it: a live
//    detector must keep the freshest events when the consumer stalls, and
//    the dropped counter makes the loss observable instead of silent.
//  - storage starts at the `shrink` watermark and grows geometrically up
//    to `max` only under bursts; drain() hands everything to the consumer
//    in FIFO order and shrinks storage back to the watermark, so a burst
//    cannot permanently pin its high-water memory.
//  - steady state (bursts that stay within the watermark between drains)
//    neither allocates nor shrinks — the path bench_stream --check-allocs
//    pins.
//
// Thread safety: any number of producers and consumers; a single mutex is
// enough because both operations are O(1)/O(n-memcpy) and the queue is an
// export buffer, not a work-distribution structure.
#pragma once

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace evfl::stream {

template <typename T>
class BoundedQueue {
 public:
  /// `max` bounds the entry count (drop-oldest beyond it); `shrink` is the
  /// storage watermark drain() returns capacity to.  shrink <= max.
  explicit BoundedQueue(std::size_t max, std::size_t shrink)
      : max_(max), shrink_(shrink) {
    EVFL_REQUIRE(max >= 1, "BoundedQueue needs max >= 1");
    EVFL_REQUIRE(shrink >= 1 && shrink <= max,
                 "BoundedQueue needs 1 <= shrink <= max");
    buf_.resize(shrink_);
  }

  void push(T value) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == max_) {
      // Full at the hard bound: overwrite the oldest slot in place.
      buf_[head_] = std::move(value);
      head_ = next(head_);
      ++dropped_;
      return;
    }
    if (count_ == buf_.size()) grow();
    buf_[index(count_)] = std::move(value);
    ++count_;
  }

  /// Append every queued entry to `out` in arrival order, empty the queue,
  /// and shrink storage back to the watermark if a burst grew it.  Returns
  /// the number of entries handed over.
  std::size_t drain(std::vector<T>& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t n = count_;
    for (std::size_t i = 0; i < n; ++i) out.push_back(std::move(buf_[index(i)]));
    head_ = 0;
    count_ = 0;
    if (buf_.size() > shrink_) {
      std::vector<T> fresh(shrink_);
      buf_.swap(fresh);
    }
    return n;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
  }

  /// Entries lost to back-pressure since construction (monotonic).
  std::uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
  }

  /// Current storage slots (>= size(); watermark after a drain).
  std::size_t capacity() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return buf_.size();
  }

  std::size_t max_entries() const { return max_; }

 private:
  std::size_t index(std::size_t i) const {
    const std::size_t j = head_ + i;
    return j >= buf_.size() ? j - buf_.size() : j;
  }
  std::size_t next(std::size_t i) const {
    return i + 1 >= buf_.size() ? 0 : i + 1;
  }

  /// Double the ring (capped at max), unwrapping so entry 0 lands at
  /// slot 0 of the fresh storage.
  void grow() {
    std::vector<T> fresh(std::min(buf_.size() * 2, max_));
    for (std::size_t i = 0; i < count_; ++i) fresh[i] = std::move(buf_[index(i)]);
    buf_.swap(fresh);
    head_ = 0;
  }

  const std::size_t max_;
  const std::size_t shrink_;
  mutable std::mutex mutex_;
  std::vector<T> buf_;
  std::size_t head_ = 0;   // slot of the oldest entry
  std::size_t count_ = 0;  // live entries
  std::uint64_t dropped_ = 0;
};

}  // namespace evfl::stream
