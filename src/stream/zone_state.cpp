#include "stream/zone_state.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace evfl::stream::detail {

void ZoneState::init(const data::MinMaxScaler& fitted_scaler,
                     std::size_t lookback,
                     const anomaly::ThresholdRule& rule, double drift_z,
                     std::size_t drift_window, std::size_t queue_reserve) {
  EVFL_REQUIRE(fitted_scaler.fitted(), "ZoneState::init: unfitted scaler");
  scaler = fitted_scaler;
  ring.assign(lookback, 0.0f);
  estimator = anomaly::IncrementalThreshold(rule);
  if (drift_z > 0.0) drift = anomaly::DriftProbe(drift_z, drift_window);
  queue.reserve(queue_reserve);
}

void RepairScratch::init(std::size_t lookback) {
  vals.assign(lookback + 1, 0.0f);
  flags.assign(lookback + 1, 0);
  flags[lookback] = 1;
  segs.assign(1, anomaly::Segment{lookback, lookback});
  cfg.method = anomaly::ImputationMethod::kLinear;
}

float RepairScratch::edge_repair(const ZoneState& z, std::size_t lookback) {
  for (std::size_t i = 0; i < lookback; ++i) {
    std::size_t j = z.head + i;
    if (j >= lookback) j -= lookback;
    vals[i] = z.ring[j];
  }
  // The trailing slot is the point under repair; kLinear never reads it
  // (no right anchor at the live edge -> hold the nearest trustworthy
  // left neighbour, exactly the paper's rule truncated to the past).
  vals[lookback] = 0.0f;
  anomaly::impute_segments(vals, segs, flags, cfg);
  return vals[lookback];
}

bool prepare_sample(ZoneState& z, const PendingSample& p,
                    std::size_t lookback, const ZonePolicy& pol,
                    RepairScratch& repair, StreamStats& stats,
                    float& scaled_out) {
  if (z.has_last && p.t != z.last_t + 1) {
    // Churn: restart or dropped samples — the window no longer holds
    // this sample's actual history, so it must refill from scratch.
    z.reset_window();
    ++stats.gaps_total;
  }
  z.last_t = p.t;
  z.has_last = true;

  const float scaled = z.scaler.transform_one(p.raw);
  const bool finite_in = std::isfinite(scaled);
  if (!finite_in) ++stats.nonfinite_inputs;

  if (z.filled < lookback) {
    // Not ready: fewer than lookback in-order samples since the zone
    // started or last gapped.  Never scored — zero-padding here would
    // fabricate history for the LSTM.
    ++stats.not_ready_total;
    if (finite_in) {
      z.push_window(scaled, lookback);
    } else if (pol.repair_inputs && z.filled > 0) {
      z.push_window(repair.edge_repair(z, lookback), lookback);
      ++stats.repaired_total;
    } else {
      // Nothing trustworthy to extend the partial window with.
      z.reset_window();
    }
    return false;
  }

  scaled_out = scaled;
  return true;
}

void apply_forecast(ZoneState& z, std::uint32_t zone,
                    const PendingSample& p, float scaled, float forecast,
                    std::size_t lookback, const ZonePolicy& pol,
                    RepairScratch& repair, StreamStats& stats,
                    std::vector<AnomalyEvent>& events) {
  const float err = forecast - scaled;
  const float score = err * err;
  ++stats.scored_total;

  const bool finite_score = std::isfinite(score);
  if (!finite_score) ++stats.nonfinite_scores;
  // NaN threshold (unarmed zone) and NaN score both compare false:
  // nothing is flagged until a threshold exists and the score is real.
  const float thr = z.threshold;
  const bool flagged = finite_score && score > thr;

  float stored = scaled;
  bool repaired = false;
  if ((flagged || !std::isfinite(scaled)) && pol.repair_inputs) {
    stored = repair.edge_repair(z, lookback);
    repaired = true;
    ++stats.repaired_total;
  }

  if (flagged) {
    AnomalyEvent ev;
    ev.zone = zone;
    ev.t = p.t;
    ev.value = p.raw;
    ev.score = score;
    ev.threshold = thr;
    ev.repaired = repaired ? z.scaler.inverse_one(stored) : p.raw;
    events.push_back(ev);
    ++stats.events_total;
  }

  // Adapt after the decision: the flag always reflects the threshold
  // as of the previous sample, matching what a deployed detector knew.
  // Flagged scores fold in winsorized — clamped at twice the threshold
  // that flagged them.  Unclamped, a handful of attack-sized outliers
  // drags the P² markers (and so the threshold) far above later
  // attacks; clamped at the threshold itself (or excluded), the
  // threshold could never rise, and any persistent mass above it —
  // e.g. scores inflated by the detector's own repairs — would flag
  // forever.  The 2x headroom lets sustained moderate exceedance walk
  // the threshold up until the flag rate matches the rule's tail
  // again, while an anomaly burst still contributes a bounded amount.
  // Until the zone arms (threshold NaN) nothing is flagged, so raw
  // scores adapt freely.
  if (pol.adapt_thresholds && !z.frozen) {
    const float folded = flagged ? std::min(score, 2.0f * thr) : score;
    if (z.estimator.observe(folded)) z.threshold = z.estimator.value();
    // Winsorized folding bounds how far an attack burst can move the
    // trailing window (each burst sample contributes at most 2x the
    // threshold), but a *sustained* shift saturates the window and trips
    // the probe: re-seed the estimator from the window instead of
    // walking the P² markers up one observation at a time.
    if (z.drift.observe(folded)) {
      z.drift.reseed(z.estimator);
      z.threshold = z.estimator.value();
      ++stats.reseeds_total;
    }
  }

  if (std::isfinite(stored)) {
    z.push_window(stored, lookback);
  } else {
    // Non-finite sample with repair disabled: the window would be
    // poisoned for the next lookback scores — drop to not-ready.
    z.reset_window();
  }
}

}  // namespace evfl::stream::detail
