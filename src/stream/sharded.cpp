#include "stream/sharded.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "common/error.hpp"

namespace evfl::stream {

ShardedPipeline::ShardedPipeline(forecast::Engine& engine,
                                 const ShardedConfig& cfg,
                                 obs::Registry* registry,
                                 obs::TraceWriter* trace)
    : engine_(engine),
      cfg_(cfg),
      policy_{cfg.stream.adapt_thresholds, cfg.stream.repair_inputs},
      lookback_(engine.model_config().sequence_length),
      queue_(cfg.stream.queue_max,
             std::min(cfg.stream.queue_shrink, cfg.stream.queue_max)),
      trace_(trace) {
  EVFL_REQUIRE(cfg_.shards >= 1 && cfg_.shards <= 256,
               "ShardedPipeline needs 1 <= shards <= 256");
  EVFL_REQUIRE(cfg_.stream.max_zones >= 1,
               "ShardedPipeline needs max_zones >= 1");
  EVFL_REQUIRE(engine_.model_config().input_features == 1,
               "ShardedPipeline ingests univariate series");
  // The fan-in merges every shard's rows into ONE engine batch, so the
  // engine must take the whole fleet at once (and 1-row rounds pad to 2).
  const std::size_t batch = std::max<std::size_t>(2, cfg_.stream.max_zones);
  EVFL_REQUIRE(engine_.config().max_batch >= batch,
               "ShardedPipeline needs engine max_batch >= max(2, max_zones)");
  shard_staging_ = tensor::Tensor3(batch, lookback_, 1);
  staging_ = tensor::Tensor3(batch, lookback_, 1);
  scores_.assign(batch, 0.0f);
  zones_.reserve(cfg_.stream.max_zones);

  const std::size_t per_shard =
      (cfg_.stream.max_zones + cfg_.shards - 1) / cfg_.shards;
  shards_.reserve(cfg_.shards);
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(cfg_.ring_max, cfg_.ring_shrink));
    Shard& sh = *shards_.back();
    sh.zone_ids.reserve(per_shard);
    sh.drain_buf.reserve(cfg_.ring_max);
    sh.repair.init(lookback_);
    sh.row_zone.assign(per_shard, 0);
    sh.row_sample.assign(per_shard, detail::PendingSample{});
    sh.row_scaled.assign(per_shard, 0.0f);
    sh.events.reserve(per_shard);
  }

  if (registry != nullptr) {
    queue_depth_gauge_ = &registry->gauge("stream.queue_depth");
    dropped_gauge_ = &registry->gauge("stream.events_dropped");
    samples_counter_ = &registry->counter("stream.samples_total");
    events_counter_ = &registry->counter("stream.events_total");
    not_ready_counter_ = &registry->counter("stream.not_ready_total");
    gaps_counter_ = &registry->counter("stream.gaps_total");
    reseeds_counter_ = &registry->counter("stream.reseeds_total");
    ingest_dropped_counter_ = &registry->counter("stream.ingest_dropped");
    flush_hist_ = &registry->histogram("stream.flush_seconds");
  }
}

std::uint32_t ShardedPipeline::add_zone(const data::MinMaxScaler& scaler) {
  EVFL_REQUIRE(zones_.size() < cfg_.stream.max_zones,
               "ShardedPipeline: max_zones exceeded");
  zones_.emplace_back();
  zones_.back().init(scaler, lookback_, cfg_.stream.threshold,
                     cfg_.stream.drift_z, cfg_.stream.drift_window,
                     cfg_.stream.flush_batch);
  const std::uint32_t id = static_cast<std::uint32_t>(zones_.size() - 1);
  shards_[id % shards_.size()]->zone_ids.push_back(id);
  return id;
}

const detail::ZoneState& ShardedPipeline::zone_at(std::uint32_t zone) const {
  EVFL_REQUIRE(zone < zones_.size(), "ShardedPipeline: unknown zone");
  return zones_[zone];
}

void ShardedPipeline::seed_threshold(std::uint32_t zone,
                                     const std::vector<float>& scores) {
  EVFL_REQUIRE(zone < zones_.size(), "ShardedPipeline: unknown zone");
  detail::ZoneState& z = zones_[zone];
  EVFL_REQUIRE(!z.frozen, "seed_threshold on a frozen zone");
  for (float s : scores) z.estimator.observe(s);
  seed_nonfinite_ += z.estimator.nonfinite_dropped();
  if (z.estimator.count() > 0) z.threshold = z.estimator.value();
}

void ShardedPipeline::freeze_threshold(std::uint32_t zone, float threshold) {
  EVFL_REQUIRE(std::isfinite(threshold),
               "freeze_threshold needs a finite threshold");
  EVFL_REQUIRE(zone < zones_.size(), "ShardedPipeline: unknown zone");
  detail::ZoneState& z = zones_[zone];
  z.threshold = threshold;
  z.frozen = true;
}

void ShardedPipeline::ingest(std::uint32_t zone, std::uint64_t t,
                             float value) {
  EVFL_REQUIRE(zone < zones_.size(), "ShardedPipeline::ingest: unknown zone");
  shards_[zone % shards_.size()]->ring.push(IngestSample{zone, t, value});
}

void ShardedPipeline::drain_ring(Shard& sh) {
  sh.drain_buf.clear();
  sh.ring.drain(sh.drain_buf);
  for (const IngestSample& m : sh.drain_buf) {
    zones_[m.zone].queue.push_back(detail::PendingSample{m.t, m.raw});
    ++sh.pending;
    ++sh.stats.samples_total;
  }
}

void ShardedPipeline::stage_shard(Shard& sh) {
  sh.rows = 0;
  float* base = shard_staging_.data() + sh.stage_base * lookback_;
  for (std::uint32_t zid : sh.zone_ids) {
    detail::ZoneState& z = zones_[zid];
    if (z.cursor >= z.queue.size()) continue;
    const detail::PendingSample p = z.queue[z.cursor++];
    --sh.pending;
    float scaled = 0.0f;
    if (!detail::prepare_sample(z, p, lookback_, policy_, sh.repair, sh.stats,
                                scaled)) {
      continue;
    }
    z.stage_window(base + sh.rows * lookback_, lookback_);
    sh.row_zone[sh.rows] = zid;
    sh.row_sample[sh.rows] = p;
    sh.row_scaled[sh.rows] = scaled;
    ++sh.rows;
  }
}

void ShardedPipeline::scatter_shard(Shard& sh) {
  for (std::size_t i = 0; i < sh.rows; ++i) {
    detail::apply_forecast(zones_[sh.row_zone[i]], sh.row_zone[i],
                           sh.row_sample[i], sh.row_scaled[i],
                           scores_[sh.row_offset + i], lookback_, policy_,
                           sh.repair, sh.stats, sh.events);
  }
}

std::size_t ShardedPipeline::flush(const runtime::RunContext* ctx) {
  obs::TraceSpan span(trace_, "stream.sharded.flush", "stream");
  const auto start = std::chrono::steady_clock::now();

  const bool par =
      ctx != nullptr && ctx->parallel() && shards_.size() > 1;
  auto run_shards = [&](auto&& fn) {
    if (par) {
      ctx->parallel_for(shards_.size(), 1,
                        [&](std::size_t b, std::size_t e) {
                          for (std::size_t s = b; s < e; ++s) fn(*shards_[s]);
                        });
    } else {
      for (auto& sh : shards_) fn(*sh);
    }
  };

  // Phase 0: pull every shard's ring into its zones' in-order queues.
  // Shards touch disjoint zones, so this parallelizes without locks
  // (beyond each ring's own consumer path).
  run_shards([&](Shard& sh) { drain_ring(sh); });

  std::size_t total_pending = 0;
  for (const auto& sh : shards_) total_pending += sh->pending;
  const std::size_t processed = total_pending;
  if (processed == 0) return 0;

  // Shard staging regions are contiguous id-order blocks; sizes are fixed
  // for the whole flush (topology is setup-phase only).
  std::size_t stage_base = 0;
  for (auto& sh : shards_) {
    sh->stage_base = stage_base;
    stage_base += sh->zone_ids.size();
  }

  while (total_pending > 0) {
    // One fan-in round: every shard advances each of its zones by at most
    // one sample (intra-zone order is load-bearing: repairing sample t
    // changes the window sample t+1 is scored against) ...
    run_shards([&](Shard& sh) { stage_shard(sh); });

    // ... the control thread compacts the shards' staged blocks into one
    // contiguous prefix, so the engine sees a single wide batch covering
    // every shard — batch efficiency scales with fleet size, not
    // per-shard zone count ...
    std::size_t total_rows = 0;
    for (auto& sh : shards_) {
      sh->row_offset = total_rows;
      if (sh->rows > 0) {
        std::memcpy(staging_.data() + total_rows * lookback_,
                    shard_staging_.data() + sh->stage_base * lookback_,
                    sh->rows * lookback_ * sizeof(float));
      }
      total_rows += sh->rows;
    }
    total_pending = 0;
    for (const auto& sh : shards_) total_pending += sh->pending;
    if (total_rows == 0) continue;  // whole round was not-ready samples

    // ... applying the 1-row-pad-to-2 wide-tier rule ONCE to the merged
    // batch (a per-shard pad would re-introduce tier divergence between
    // shard counts) ...
    std::size_t score_rows = total_rows;
    if (total_rows == 1) {
      staging_.copy_sample_into(0, staging_, 1);
      score_rows = 2;
    }
    engine_.score_prefix(staging_, score_rows, scores_.data(), ctx);

    // ... then shards scatter their score slice back through the shared
    // per-zone state machine, lock-free on their own zones.
    run_shards([&](Shard& sh) { scatter_shard(sh); });

    // Event fan-in in shard order: deterministic consumer-visible order.
    for (auto& sh : shards_) {
      for (const AnomalyEvent& ev : sh->events) queue_.push(ev);
      sh->events.clear();
    }
  }

  for (detail::ZoneState& z : zones_) {
    z.queue.clear();  // capacity retained — steady-state allocation-free
    z.cursor = 0;
  }
  ++flushes_;

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  if (flush_hist_ != nullptr) flush_hist_->record(elapsed.count());
  const StreamStats agg = stats();
  publish_telemetry(agg);
  span.annotate("samples", static_cast<std::uint64_t>(processed));
  span.annotate("queue_depth", static_cast<std::uint64_t>(queue_.size()));
  return processed;
}

void ShardedPipeline::publish_telemetry(const StreamStats& agg) {
  if (samples_counter_ != nullptr) {
    samples_counter_->add(
        static_cast<double>(agg.samples_total - published_.samples_total));
    events_counter_->add(
        static_cast<double>(agg.events_total - published_.events_total));
    not_ready_counter_->add(static_cast<double>(agg.not_ready_total -
                                                published_.not_ready_total));
    gaps_counter_->add(
        static_cast<double>(agg.gaps_total - published_.gaps_total));
    reseeds_counter_->add(
        static_cast<double>(agg.reseeds_total - published_.reseeds_total));
    ingest_dropped_counter_->add(
        static_cast<double>(agg.ingest_dropped - published_.ingest_dropped));
    published_ = agg;
  }
  if (queue_depth_gauge_ != nullptr) {
    queue_depth_gauge_->set(static_cast<double>(queue_.size()));
    dropped_gauge_->set(static_cast<double>(queue_.dropped()));
  }
}

std::size_t ShardedPipeline::drain(std::vector<AnomalyEvent>& out) {
  const std::size_t n = queue_.drain(out);
  if (queue_depth_gauge_ != nullptr) {
    queue_depth_gauge_->set(0.0);
    dropped_gauge_->set(static_cast<double>(queue_.dropped()));
  }
  return n;
}

StreamStats ShardedPipeline::stats() const {
  StreamStats agg;
  for (const auto& sh : shards_) {
    const StreamStats& s = sh->stats;
    agg.samples_total += s.samples_total;
    agg.scored_total += s.scored_total;
    agg.not_ready_total += s.not_ready_total;
    agg.gaps_total += s.gaps_total;
    agg.events_total += s.events_total;
    agg.repaired_total += s.repaired_total;
    agg.nonfinite_inputs += s.nonfinite_inputs;
    agg.nonfinite_scores += s.nonfinite_scores;
    agg.reseeds_total += s.reseeds_total;
    agg.ingest_dropped += sh->ring.dropped();
  }
  agg.nonfinite_scores += seed_nonfinite_;
  agg.events_dropped = queue_.dropped();
  agg.flushes_total = flushes_;
  return agg;
}

std::size_t ShardedPipeline::pending() const {
  std::size_t total = 0;
  for (const auto& sh : shards_) total += sh->pending;
  return total;
}

bool ShardedPipeline::ready(std::uint32_t zone) const {
  return zone_at(zone).filled == lookback_;
}

float ShardedPipeline::threshold(std::uint32_t zone) const {
  return zone_at(zone).threshold;
}

const anomaly::IncrementalThreshold& ShardedPipeline::estimator(
    std::uint32_t zone) const {
  return zone_at(zone).estimator;
}

std::uint64_t ShardedPipeline::ingest_dropped() const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->ring.dropped();
  return total;
}

}  // namespace evfl::stream
