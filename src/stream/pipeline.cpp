#include "stream/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/error.hpp"

namespace evfl::stream {

StreamPipeline::StreamPipeline(forecast::Engine& engine,
                               const StreamConfig& cfg, obs::Registry* registry,
                               obs::TraceWriter* trace)
    : engine_(engine),
      cfg_(cfg),
      lookback_(engine.model_config().sequence_length),
      queue_(cfg.queue_max, std::min(cfg.queue_shrink, cfg.queue_max)),
      trace_(trace) {
  EVFL_REQUIRE(cfg_.max_zones >= 1, "StreamPipeline needs max_zones >= 1");
  EVFL_REQUIRE(cfg_.flush_batch >= 1, "StreamPipeline needs flush_batch >= 1");
  EVFL_REQUIRE(engine_.model_config().input_features == 1,
               "StreamPipeline ingests univariate series");
  // Rounds stage at most one sample per zone, and single-row rounds pad to
  // two rows so every score runs the wide tier (see header).
  const std::size_t batch = std::max<std::size_t>(2, cfg_.max_zones);
  EVFL_REQUIRE(engine_.config().max_batch >= batch,
               "StreamPipeline needs engine max_batch >= max(2, max_zones)");
  staging_ = tensor::Tensor3(batch, lookback_, 1);
  scores_.assign(batch, 0.0f);
  row_zone_.assign(batch, 0);
  row_sample_.assign(batch, Pending{});
  row_scaled_.assign(batch, 0.0f);
  // Edge-repair scratch: only the trailing point is ever under repair, so
  // the flags and the one-segment list are fixed at construction.
  repair_vals_.assign(lookback_ + 1, 0.0f);
  repair_flags_.assign(lookback_ + 1, 0);
  repair_flags_[lookback_] = 1;
  repair_segs_.assign(1, anomaly::Segment{lookback_, lookback_});
  repair_cfg_.method = anomaly::ImputationMethod::kLinear;
  zones_.reserve(cfg_.max_zones);
  if (registry != nullptr) {
    queue_depth_gauge_ = &registry->gauge("stream.queue_depth");
    dropped_gauge_ = &registry->gauge("stream.events_dropped");
    samples_counter_ = &registry->counter("stream.samples_total");
    events_counter_ = &registry->counter("stream.events_total");
    not_ready_counter_ = &registry->counter("stream.not_ready_total");
    gaps_counter_ = &registry->counter("stream.gaps_total");
    flush_hist_ = &registry->histogram("stream.flush_seconds");
  }
}

std::uint32_t StreamPipeline::add_zone(const data::MinMaxScaler& scaler) {
  EVFL_REQUIRE(zones_.size() < cfg_.max_zones,
               "StreamPipeline: max_zones exceeded");
  EVFL_REQUIRE(scaler.fitted(), "StreamPipeline::add_zone: unfitted scaler");
  zones_.emplace_back();
  Zone& z = zones_.back();
  z.scaler = scaler;
  z.ring.assign(lookback_, 0.0f);
  z.estimator = anomaly::IncrementalThreshold(cfg_.threshold);
  // Worst case every pending sample belongs to one zone; reserving the full
  // auto-flush batch keeps ingest() allocation-free after this point.
  z.queue.reserve(cfg_.flush_batch);
  return static_cast<std::uint32_t>(zones_.size() - 1);
}

const StreamPipeline::Zone& StreamPipeline::zone_at(std::uint32_t zone) const {
  EVFL_REQUIRE(zone < zones_.size(), "StreamPipeline: unknown zone");
  return zones_[zone];
}

void StreamPipeline::seed_threshold(std::uint32_t zone,
                                    const std::vector<float>& scores) {
  EVFL_REQUIRE(zone < zones_.size(), "StreamPipeline: unknown zone");
  Zone& z = zones_[zone];
  EVFL_REQUIRE(!z.frozen, "seed_threshold on a frozen zone");
  for (float s : scores) z.estimator.observe(s);
  stats_.nonfinite_scores += z.estimator.nonfinite_dropped();
  if (z.estimator.count() > 0) z.threshold = z.estimator.value();
}

void StreamPipeline::freeze_threshold(std::uint32_t zone, float threshold) {
  EVFL_REQUIRE(std::isfinite(threshold),
               "freeze_threshold needs a finite threshold");
  EVFL_REQUIRE(zone < zones_.size(), "StreamPipeline: unknown zone");
  Zone& z = zones_[zone];
  z.threshold = threshold;
  z.frozen = true;
}

void StreamPipeline::ingest(std::uint32_t zone, std::uint64_t t, float value) {
  EVFL_REQUIRE(zone < zones_.size(), "StreamPipeline::ingest: unknown zone");
  zones_[zone].queue.push_back(Pending{t, value});
  ++pending_total_;
  ++stats_.samples_total;
  if (pending_total_ >= cfg_.flush_batch) flush(run_ctx_);
}

void StreamPipeline::reset_window(Zone& z) {
  z.head = 0;
  z.filled = 0;
}

void StreamPipeline::push_window(Zone& z, float scaled) {
  if (z.filled == lookback_) {
    z.ring[z.head] = scaled;
    z.head = z.head + 1 == lookback_ ? 0 : z.head + 1;
  } else {
    z.ring[(z.head + z.filled) % lookback_] = scaled;
    ++z.filled;
  }
}

void StreamPipeline::stage_window(const Zone& z, std::size_t row) {
  float* dst = staging_.data() + row * lookback_;
  for (std::size_t i = 0; i < lookback_; ++i) {
    std::size_t j = z.head + i;
    if (j >= lookback_) j -= lookback_;
    dst[i] = z.ring[j];
  }
}

float StreamPipeline::edge_repair(const Zone& z) {
  for (std::size_t i = 0; i < lookback_; ++i) {
    std::size_t j = z.head + i;
    if (j >= lookback_) j -= lookback_;
    repair_vals_[i] = z.ring[j];
  }
  // The trailing slot is the point under repair; kLinear never reads it
  // (no right anchor at the live edge -> hold the nearest trustworthy
  // left neighbour, exactly the paper's rule truncated to the past).
  repair_vals_[lookback_] = 0.0f;
  anomaly::impute_segments(repair_vals_, repair_segs_, repair_flags_,
                           repair_cfg_);
  return repair_vals_[lookback_];
}

std::size_t StreamPipeline::flush(const runtime::RunContext* ctx) {
  if (pending_total_ == 0) return 0;
  obs::TraceSpan span(trace_, "stream.flush", "stream");
  const auto start = std::chrono::steady_clock::now();
  std::size_t processed = 0;

  while (pending_total_ > 0) {
    // One round: the oldest unprocessed sample of every zone that has one.
    // Intra-zone order is preserved round to round (repairing sample t
    // changes the window sample t+1 is scored against); cross-zone
    // batching is where the engine win comes from.
    std::size_t rows = 0;
    for (std::uint32_t zi = 0; zi < zones_.size(); ++zi) {
      Zone& z = zones_[zi];
      if (z.cursor >= z.queue.size()) continue;
      const Pending p = z.queue[z.cursor++];
      --pending_total_;
      ++processed;

      if (z.has_last && p.t != z.last_t + 1) {
        // Churn: restart or dropped samples — the window no longer holds
        // this sample's actual history, so it must refill from scratch.
        reset_window(z);
        ++stats_.gaps_total;
      }
      z.last_t = p.t;
      z.has_last = true;

      const float scaled = z.scaler.transform_one(p.raw);
      const bool finite_in = std::isfinite(scaled);
      if (!finite_in) ++stats_.nonfinite_inputs;

      if (z.filled < lookback_) {
        // Not ready: fewer than lookback in-order samples since the zone
        // started or last gapped.  Never scored — zero-padding here would
        // fabricate history for the LSTM.
        ++stats_.not_ready_total;
        if (finite_in) {
          push_window(z, scaled);
        } else if (cfg_.repair_inputs && z.filled > 0) {
          push_window(z, edge_repair(z));
          ++stats_.repaired_total;
        } else {
          // Nothing trustworthy to extend the partial window with.
          reset_window(z);
        }
        continue;
      }

      stage_window(z, rows);
      row_zone_[rows] = zi;
      row_sample_[rows] = p;
      row_scaled_[rows] = scaled;
      ++rows;
    }
    if (rows == 0) continue;

    // Pad single-row rounds so the engine always takes the wide tier (see
    // header: tier uniformity is what makes frozen-threshold streaming
    // bit-identical to batch_scores()).
    std::size_t score_rows = rows;
    if (rows == 1) {
      staging_.copy_sample_into(0, staging_, 1);
      score_rows = 2;
    }
    engine_.score_prefix(staging_, score_rows, scores_.data(), ctx);

    for (std::size_t r = 0; r < rows; ++r) {
      Zone& z = zones_[row_zone_[r]];
      const Pending p = row_sample_[r];
      const float scaled = row_scaled_[r];
      const float err = scores_[r] - scaled;
      const float score = err * err;
      ++stats_.scored_total;

      const bool finite_score = std::isfinite(score);
      if (!finite_score) ++stats_.nonfinite_scores;
      // NaN threshold (unarmed zone) and NaN score both compare false:
      // nothing is flagged until a threshold exists and the score is real.
      const float thr = z.threshold;
      const bool flagged = finite_score && score > thr;

      float stored = scaled;
      bool repaired = false;
      if ((flagged || !std::isfinite(scaled)) && cfg_.repair_inputs) {
        stored = edge_repair(z);
        repaired = true;
        ++stats_.repaired_total;
      }

      if (flagged) {
        AnomalyEvent ev;
        ev.zone = row_zone_[r];
        ev.t = p.t;
        ev.value = p.raw;
        ev.score = score;
        ev.threshold = thr;
        ev.repaired = repaired ? z.scaler.inverse_one(stored) : p.raw;
        queue_.push(ev);
        ++stats_.events_total;
      }

      // Adapt after the decision: the flag always reflects the threshold
      // as of the previous sample, matching what a deployed detector knew.
      // Flagged scores fold in winsorized — clamped at twice the threshold
      // that flagged them.  Unclamped, a handful of attack-sized outliers
      // drags the P² markers (and so the threshold) far above later
      // attacks; clamped at the threshold itself (or excluded), the
      // threshold could never rise, and any persistent mass above it —
      // e.g. scores inflated by the detector's own repairs — would flag
      // forever.  The 2x headroom lets sustained moderate exceedance walk
      // the threshold up until the flag rate matches the rule's tail
      // again, while an anomaly burst still contributes a bounded amount.
      // Until the zone arms (threshold NaN) nothing is flagged, so raw
      // scores adapt freely.
      if (cfg_.adapt_thresholds && !z.frozen) {
        const float folded = flagged ? std::min(score, 2.0f * thr) : score;
        if (z.estimator.observe(folded)) z.threshold = z.estimator.value();
      }

      if (std::isfinite(stored)) {
        push_window(z, stored);
      } else {
        // Non-finite sample with repair disabled: the window would be
        // poisoned for the next lookback scores — drop to not-ready.
        reset_window(z);
      }
    }
  }

  for (Zone& z : zones_) {
    z.queue.clear();  // capacity retained — steady-state allocation-free
    z.cursor = 0;
  }
  ++stats_.flushes_total;
  stats_.events_dropped = queue_.dropped();

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  if (flush_hist_ != nullptr) flush_hist_->record(elapsed.count());
  publish_telemetry();
  span.annotate("samples", static_cast<std::uint64_t>(processed));
  span.annotate("queue_depth", static_cast<std::uint64_t>(queue_.size()));
  return processed;
}

void StreamPipeline::publish_telemetry() {
  if (samples_counter_ != nullptr) {
    samples_counter_->add(
        static_cast<double>(stats_.samples_total - published_.samples_total));
    events_counter_->add(
        static_cast<double>(stats_.events_total - published_.events_total));
    not_ready_counter_->add(static_cast<double>(stats_.not_ready_total -
                                                published_.not_ready_total));
    gaps_counter_->add(
        static_cast<double>(stats_.gaps_total - published_.gaps_total));
    published_ = stats_;
  }
  if (queue_depth_gauge_ != nullptr) {
    queue_depth_gauge_->set(static_cast<double>(queue_.size()));
    dropped_gauge_->set(static_cast<double>(queue_.dropped()));
  }
}

std::size_t StreamPipeline::drain(std::vector<AnomalyEvent>& out) {
  const std::size_t n = queue_.drain(out);
  if (queue_depth_gauge_ != nullptr) {
    queue_depth_gauge_->set(0.0);
    dropped_gauge_->set(static_cast<double>(queue_.dropped()));
  }
  return n;
}

StreamStats StreamPipeline::stats() const {
  StreamStats s = stats_;
  s.events_dropped = queue_.dropped();
  return s;
}

bool StreamPipeline::ready(std::uint32_t zone) const {
  return zone_at(zone).filled == lookback_;
}

float StreamPipeline::threshold(std::uint32_t zone) const {
  return zone_at(zone).threshold;
}

const anomaly::IncrementalThreshold& StreamPipeline::estimator(
    std::uint32_t zone) const {
  return zone_at(zone).estimator;
}

std::vector<float> batch_scores(forecast::Engine& engine,
                                const std::vector<float>& series,
                                const runtime::RunContext* ctx) {
  const forecast::ForecasterConfig& mc = engine.model_config();
  EVFL_REQUIRE(mc.input_features == 1, "batch_scores: univariate series only");
  const std::size_t lookback = mc.sequence_length;
  EVFL_REQUIRE(series.size() > lookback,
               "batch_scores: series no longer than the lookback");
  const std::size_t max_batch = engine.config().max_batch;
  EVFL_REQUIRE(max_batch >= 2, "batch_scores: engine max_batch must be >= 2");

  const std::size_t n = series.size() - lookback;
  tensor::Tensor3 x(std::max<std::size_t>(2, std::min(n, max_batch)), lookback,
                    1);
  std::vector<float> forecasts(x.batch(), 0.0f);
  std::vector<float> out(n, 0.0f);

  std::size_t done = 0;
  while (done < n) {
    const std::size_t rows = std::min(n - done, max_batch);
    for (std::size_t r = 0; r < rows; ++r) {
      float* dst = x.data() + r * lookback;
      const float* src = series.data() + done + r;
      std::copy(src, src + lookback, dst);
    }
    // Same wide-tier rule as the stream: never score a 1-row batch.
    std::size_t score_rows = rows;
    if (rows == 1) {
      x.copy_sample_into(0, x, 1);
      score_rows = 2;
    }
    engine.score_prefix(x, score_rows, forecasts.data(), ctx);
    for (std::size_t r = 0; r < rows; ++r) {
      const float err = forecasts[r] - series[done + r + lookback];
      out[done + r] = err * err;
    }
    done += rows;
  }
  return out;
}

}  // namespace evfl::stream
