#include "stream/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/error.hpp"

namespace evfl::stream {

StreamPipeline::StreamPipeline(forecast::Engine& engine,
                               const StreamConfig& cfg, obs::Registry* registry,
                               obs::TraceWriter* trace)
    : engine_(engine),
      cfg_(cfg),
      policy_{cfg.adapt_thresholds, cfg.repair_inputs},
      lookback_(engine.model_config().sequence_length),
      queue_(cfg.queue_max, std::min(cfg.queue_shrink, cfg.queue_max)),
      trace_(trace) {
  EVFL_REQUIRE(cfg_.max_zones >= 1, "StreamPipeline needs max_zones >= 1");
  EVFL_REQUIRE(cfg_.flush_batch >= 1, "StreamPipeline needs flush_batch >= 1");
  EVFL_REQUIRE(engine_.model_config().input_features == 1,
               "StreamPipeline ingests univariate series");
  // Rounds stage at most one sample per zone, and single-row rounds pad to
  // two rows so every score runs the wide tier (see header).
  const std::size_t batch = std::max<std::size_t>(2, cfg_.max_zones);
  EVFL_REQUIRE(engine_.config().max_batch >= batch,
               "StreamPipeline needs engine max_batch >= max(2, max_zones)");
  staging_ = tensor::Tensor3(batch, lookback_, 1);
  scores_.assign(batch, 0.0f);
  row_zone_.assign(batch, 0);
  row_sample_.assign(batch, detail::PendingSample{});
  row_scaled_.assign(batch, 0.0f);
  round_events_.reserve(batch);
  repair_.init(lookback_);
  zones_.reserve(cfg_.max_zones);
  if (registry != nullptr) {
    queue_depth_gauge_ = &registry->gauge("stream.queue_depth");
    dropped_gauge_ = &registry->gauge("stream.events_dropped");
    samples_counter_ = &registry->counter("stream.samples_total");
    events_counter_ = &registry->counter("stream.events_total");
    not_ready_counter_ = &registry->counter("stream.not_ready_total");
    gaps_counter_ = &registry->counter("stream.gaps_total");
    reseeds_counter_ = &registry->counter("stream.reseeds_total");
    flush_hist_ = &registry->histogram("stream.flush_seconds");
  }
}

std::uint32_t StreamPipeline::add_zone(const data::MinMaxScaler& scaler) {
  EVFL_REQUIRE(zones_.size() < cfg_.max_zones,
               "StreamPipeline: max_zones exceeded");
  zones_.emplace_back();
  // Worst case every pending sample belongs to one zone; reserving the full
  // auto-flush batch keeps ingest() allocation-free after this point.
  zones_.back().init(scaler, lookback_, cfg_.threshold, cfg_.drift_z,
                     cfg_.drift_window, cfg_.flush_batch);
  return static_cast<std::uint32_t>(zones_.size() - 1);
}

const detail::ZoneState& StreamPipeline::zone_at(std::uint32_t zone) const {
  EVFL_REQUIRE(zone < zones_.size(), "StreamPipeline: unknown zone");
  return zones_[zone];
}

void StreamPipeline::seed_threshold(std::uint32_t zone,
                                    const std::vector<float>& scores) {
  EVFL_REQUIRE(zone < zones_.size(), "StreamPipeline: unknown zone");
  detail::ZoneState& z = zones_[zone];
  EVFL_REQUIRE(!z.frozen, "seed_threshold on a frozen zone");
  for (float s : scores) z.estimator.observe(s);
  stats_.nonfinite_scores += z.estimator.nonfinite_dropped();
  if (z.estimator.count() > 0) z.threshold = z.estimator.value();
}

void StreamPipeline::freeze_threshold(std::uint32_t zone, float threshold) {
  EVFL_REQUIRE(std::isfinite(threshold),
               "freeze_threshold needs a finite threshold");
  EVFL_REQUIRE(zone < zones_.size(), "StreamPipeline: unknown zone");
  detail::ZoneState& z = zones_[zone];
  z.threshold = threshold;
  z.frozen = true;
}

void StreamPipeline::ingest(std::uint32_t zone, std::uint64_t t, float value) {
  EVFL_REQUIRE(zone < zones_.size(), "StreamPipeline::ingest: unknown zone");
  zones_[zone].queue.push_back(detail::PendingSample{t, value});
  ++pending_total_;
  ++stats_.samples_total;
  if (pending_total_ >= cfg_.flush_batch) flush(run_ctx_);
}

std::size_t StreamPipeline::flush(const runtime::RunContext* ctx) {
  if (pending_total_ == 0) return 0;
  obs::TraceSpan span(trace_, "stream.flush", "stream");
  const auto start = std::chrono::steady_clock::now();
  std::size_t processed = 0;

  while (pending_total_ > 0) {
    // One round: the oldest unprocessed sample of every zone that has one.
    // Intra-zone order is preserved round to round (repairing sample t
    // changes the window sample t+1 is scored against); cross-zone
    // batching is where the engine win comes from.
    std::size_t rows = 0;
    for (std::uint32_t zi = 0; zi < zones_.size(); ++zi) {
      detail::ZoneState& z = zones_[zi];
      if (z.cursor >= z.queue.size()) continue;
      const detail::PendingSample p = z.queue[z.cursor++];
      --pending_total_;
      ++processed;

      float scaled = 0.0f;
      if (!detail::prepare_sample(z, p, lookback_, policy_, repair_, stats_,
                                  scaled)) {
        continue;
      }
      z.stage_window(staging_.data() + rows * lookback_, lookback_);
      row_zone_[rows] = zi;
      row_sample_[rows] = p;
      row_scaled_[rows] = scaled;
      ++rows;
    }
    if (rows == 0) continue;

    // Pad single-row rounds so the engine always takes the wide tier (see
    // header: tier uniformity is what makes frozen-threshold streaming
    // bit-identical to batch_scores()).
    std::size_t score_rows = rows;
    if (rows == 1) {
      staging_.copy_sample_into(0, staging_, 1);
      score_rows = 2;
    }
    engine_.score_prefix(staging_, score_rows, scores_.data(), ctx);

    round_events_.clear();
    for (std::size_t r = 0; r < rows; ++r) {
      detail::apply_forecast(zones_[row_zone_[r]], row_zone_[r],
                             row_sample_[r], row_scaled_[r], scores_[r],
                             lookback_, policy_, repair_, stats_,
                             round_events_);
    }
    for (const AnomalyEvent& ev : round_events_) queue_.push(ev);
  }

  for (detail::ZoneState& z : zones_) {
    z.queue.clear();  // capacity retained — steady-state allocation-free
    z.cursor = 0;
  }
  ++stats_.flushes_total;
  stats_.events_dropped = queue_.dropped();

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  if (flush_hist_ != nullptr) flush_hist_->record(elapsed.count());
  publish_telemetry();
  span.annotate("samples", static_cast<std::uint64_t>(processed));
  span.annotate("queue_depth", static_cast<std::uint64_t>(queue_.size()));
  return processed;
}

void StreamPipeline::publish_telemetry() {
  if (samples_counter_ != nullptr) {
    samples_counter_->add(
        static_cast<double>(stats_.samples_total - published_.samples_total));
    events_counter_->add(
        static_cast<double>(stats_.events_total - published_.events_total));
    not_ready_counter_->add(static_cast<double>(stats_.not_ready_total -
                                                published_.not_ready_total));
    gaps_counter_->add(
        static_cast<double>(stats_.gaps_total - published_.gaps_total));
    reseeds_counter_->add(
        static_cast<double>(stats_.reseeds_total - published_.reseeds_total));
    published_ = stats_;
  }
  if (queue_depth_gauge_ != nullptr) {
    queue_depth_gauge_->set(static_cast<double>(queue_.size()));
    dropped_gauge_->set(static_cast<double>(queue_.dropped()));
  }
}

std::size_t StreamPipeline::drain(std::vector<AnomalyEvent>& out) {
  const std::size_t n = queue_.drain(out);
  if (queue_depth_gauge_ != nullptr) {
    queue_depth_gauge_->set(0.0);
    dropped_gauge_->set(static_cast<double>(queue_.dropped()));
  }
  return n;
}

StreamStats StreamPipeline::stats() const {
  StreamStats s = stats_;
  s.events_dropped = queue_.dropped();
  return s;
}

bool StreamPipeline::ready(std::uint32_t zone) const {
  return zone_at(zone).filled == lookback_;
}

float StreamPipeline::threshold(std::uint32_t zone) const {
  return zone_at(zone).threshold;
}

const anomaly::IncrementalThreshold& StreamPipeline::estimator(
    std::uint32_t zone) const {
  return zone_at(zone).estimator;
}

std::vector<float> batch_scores(forecast::Engine& engine,
                                const std::vector<float>& series,
                                const runtime::RunContext* ctx) {
  const forecast::ForecasterConfig& mc = engine.model_config();
  EVFL_REQUIRE(mc.input_features == 1, "batch_scores: univariate series only");
  const std::size_t lookback = mc.sequence_length;
  EVFL_REQUIRE(series.size() > lookback,
               "batch_scores: series no longer than the lookback");
  const std::size_t max_batch = engine.config().max_batch;
  EVFL_REQUIRE(max_batch >= 2, "batch_scores: engine max_batch must be >= 2");

  const std::size_t n = series.size() - lookback;
  tensor::Tensor3 x(std::max<std::size_t>(2, std::min(n, max_batch)), lookback,
                    1);
  std::vector<float> forecasts(x.batch(), 0.0f);
  std::vector<float> out(n, 0.0f);

  std::size_t done = 0;
  while (done < n) {
    const std::size_t rows = std::min(n - done, max_batch);
    for (std::size_t r = 0; r < rows; ++r) {
      float* dst = x.data() + r * lookback;
      const float* src = series.data() + done + r;
      std::copy(src, src + lookback, dst);
    }
    // Same wide-tier rule as the stream: never score a 1-row batch.
    std::size_t score_rows = rows;
    if (rows == 1) {
      x.copy_sample_into(0, x, 1);
      score_rows = 2;
    }
    engine.score_prefix(x, score_rows, forecasts.data(), ctx);
    for (std::size_t r = 0; r < rows; ++r) {
      const float err = forecasts[r] - series[done + r + lookback];
      out[done + r] = err * err;
    }
    done += rows;
  }
  return out;
}

}  // namespace evfl::stream
