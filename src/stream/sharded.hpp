// evfl::stream::ShardedPipeline — the multi-core streaming runtime
// (DESIGN.md §15).  StreamPipeline (pipeline.hpp) is single-producer: one
// thread owns ingest and flush, and one engine round batches at most one
// sample per zone.  A fleet-scale deployment has neither property — many
// collector threads deliver samples concurrently, and one core cannot keep
// up with the per-sample bookkeeping.  ShardedPipeline keeps the exact
// per-zone semantics (zone_state.hpp, shared verbatim with StreamPipeline)
// and changes only who runs them:
//
//   - zones are hash-partitioned across `shards` (zone % shards); each
//     shard owns its zones' sliding windows, incremental thresholds, drift
//     probes, and repair scratch outright, so shard workers run the whole
//     prepare/apply state machine lock-free on disjoint state;
//   - ingest is multi-producer: any thread may ingest() any zone at any
//     time; the sample lands in the owning shard's bounded MPSC ring
//     (mpsc_ring.hpp — reserve/commit fast path, drop-oldest past the hard
//     bound with an exact count, shrink-on-drain).  Producers never flush;
//     the control thread drives cadence;
//   - flush() fans in: every shard stages its ready rows into its own
//     region of a staging tensor, the control thread compacts those
//     regions into one contiguous prefix and makes a single wide
//     forecast::Engine::score() call for ALL shards' rows — engine batch
//     efficiency scales with total zones, not per-shard zones — then
//     shards scatter their scores back through apply_forecast() in
//     parallel.  The 1-row-pad-to-2 engine rule is applied once to the
//     merged batch, never per shard or per zone;
//   - events fan in to one BoundedQueue in shard order (shard 0's zones
//     first), so consumer-visible order is deterministic.
//
// Determinism contract: per-zone outputs (scores, flags, events,
// thresholds) are bit-identical regardless of shard count or producer
// interleaving, and — frozen — bit-identical to StreamPipeline and
// batch_scores().  The argument: every staged row runs the engine's wide
// tier (pad-to-2), whose per-row results are independent of batch
// composition (pinned by the engine's own tests); zone state is touched
// only by its owning shard in the zone's sample order; and per-zone sample
// order is whatever the producers delivered — identical interleavings give
// identical results, and a single producer per zone (the common collector
// topology) makes the whole pipeline deterministic end to end
// (tests/test_sharded.cpp pins 1/2/4/8-shard equality).
//
// Threading: ingest() from any number of threads, concurrently with one
// control thread calling flush(); drain() is safe from consumer threads.
// add_zone()/seed_threshold()/freeze_threshold() are setup-phase only —
// never concurrent with ingest() or flush().  After warmup, a serial
// flush() of clean data allocates nothing (bench_stream --check-allocs
// pins this per shard).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "anomaly/threshold.hpp"
#include "data/scaler.hpp"
#include "forecast/engine.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "runtime/run_context.hpp"
#include "stream/mpsc_ring.hpp"
#include "stream/pipeline.hpp"
#include "stream/queue.hpp"
#include "stream/zone_state.hpp"
#include "tensor/tensor3.hpp"

namespace evfl::stream {

struct ShardedConfig {
  /// Shard (worker-partition) count; zone z belongs to shard z % shards.
  std::size_t shards = 1;
  /// Per-zone semantics and sizing, shared with StreamPipeline.
  /// `max_zones` is the TOTAL across all shards; `flush_batch` only sizes
  /// the per-zone queue reserve (producers cannot flush — the control
  /// thread owns cadence).
  StreamConfig stream{};
  /// Per-shard ingest-ring hard bound and post-drain storage watermark
  /// (MpscRing contract: 8 <= shrink <= max).
  std::size_t ring_max = 65536;
  std::size_t ring_shrink = 4096;
};

class ShardedPipeline {
 public:
  /// The engine must outlive the pipeline and accept batches of
  /// max(2, cfg.stream.max_zones).  Optional registry/trace as in
  /// StreamPipeline (counters gain stream.ingest_dropped).
  ShardedPipeline(forecast::Engine& engine, const ShardedConfig& cfg,
                  obs::Registry* registry = nullptr,
                  obs::TraceWriter* trace = nullptr);

  ShardedPipeline(const ShardedPipeline&) = delete;
  ShardedPipeline& operator=(const ShardedPipeline&) = delete;

  /// Register a zone (setup phase only); returns the global zone id.
  /// Zone ids are assigned in call order, so shard ownership is
  /// reproducible: zone i lives on shard i % shards.
  std::uint32_t add_zone(const data::MinMaxScaler& scaler);

  /// Setup-phase threshold controls, identical to StreamPipeline.
  void seed_threshold(std::uint32_t zone, const std::vector<float>& scores);
  void freeze_threshold(std::uint32_t zone, float threshold);

  /// Enqueue one sample — safe from ANY thread, concurrently with flush().
  /// Back-pressure: a full shard ring drops its oldest sample (counted in
  /// stats().ingest_dropped), never blocks the producer unboundedly.
  void ingest(std::uint32_t zone, std::uint64_t t, float value);

  /// Control thread: drain every shard ring into its zones' queues, then
  /// score all pending samples in fan-in rounds (one merged engine batch
  /// per round).  Shard stage/scatter phases run on `ctx` when it carries
  /// a pool; serial (and allocation-free after warmup) otherwise.
  /// Returns samples processed (scored + not-ready).
  std::size_t flush(const runtime::RunContext* ctx = nullptr);

  /// Move queued events into `out` (fan-in order); consumer-thread safe.
  std::size_t drain(std::vector<AnomalyEvent>& out);

  /// Aggregated counters across all shards (ingest_dropped = ring drops).
  StreamStats stats() const;

  std::size_t zones() const { return zones_.size(); }
  std::size_t shards() const { return shards_.size(); }
  /// Samples drained from rings but not yet scored (0 after flush()).
  std::size_t pending() const;
  bool ready(std::uint32_t zone) const;
  float threshold(std::uint32_t zone) const;
  const anomaly::IncrementalThreshold& estimator(std::uint32_t zone) const;
  std::size_t lookback() const { return lookback_; }
  std::uint64_t queue_dropped() const { return queue_.dropped(); }
  /// Samples lost to ring back-pressure across all shards.
  std::uint64_t ingest_dropped() const;

 private:
  /// One multi-producer sample as it crosses the ring.
  struct IngestSample {
    std::uint32_t zone = 0;
    std::uint64_t t = 0;
    float raw = 0.0f;
  };

  /// Everything one shard worker owns.  Only that worker (or the control
  /// thread between phases) touches it; the ring is the sole
  /// cross-thread member.
  struct Shard {
    Shard(std::size_t ring_max, std::size_t ring_shrink)
        : ring(ring_max, ring_shrink) {}

    MpscRing<IngestSample> ring;
    std::vector<std::uint32_t> zone_ids;  // owned zones, ascending
    std::vector<IngestSample> drain_buf;  // warm ring-drain scratch
    detail::RepairScratch repair;
    StreamStats stats;  // single-writer (this shard)
    std::size_t pending = 0;  // queued-in-zones, not yet processed
    // Per-round staging metadata: the shard's staged rows live at
    // [stage_base, stage_base + rows) of the shard staging tensor and
    // score at [row_offset, row_offset + rows) of the merged batch.
    std::size_t stage_base = 0;
    std::size_t rows = 0;
    std::size_t row_offset = 0;
    std::vector<std::uint32_t> row_zone;
    std::vector<detail::PendingSample> row_sample;
    std::vector<float> row_scaled;
    std::vector<AnomalyEvent> events;  // warm per-round event staging
  };

  void drain_ring(Shard& sh);
  void stage_shard(Shard& sh);
  void scatter_shard(Shard& sh);
  const detail::ZoneState& zone_at(std::uint32_t zone) const;
  void publish_telemetry(const StreamStats& agg);

  forecast::Engine& engine_;
  ShardedConfig cfg_;
  detail::ZonePolicy policy_;
  std::size_t lookback_;

  std::vector<detail::ZoneState> zones_;  // indexed by global zone id
  std::vector<std::unique_ptr<Shard>> shards_;

  // Fan-in scratch: shards stage into disjoint regions of shard_staging_;
  // the control thread compacts live rows into a contiguous prefix of
  // staging_ and scores once.
  tensor::Tensor3 shard_staging_;
  tensor::Tensor3 staging_;
  std::vector<float> scores_;

  BoundedQueue<AnomalyEvent> queue_;
  std::uint64_t flushes_ = 0;
  std::uint64_t seed_nonfinite_ = 0;  // nonfinite dropped during seeding
  StreamStats published_;

  obs::TraceWriter* trace_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Gauge* dropped_gauge_ = nullptr;
  obs::Counter* samples_counter_ = nullptr;
  obs::Counter* events_counter_ = nullptr;
  obs::Counter* not_ready_counter_ = nullptr;
  obs::Counter* gaps_counter_ = nullptr;
  obs::Counter* reseeds_counter_ = nullptr;
  obs::Counter* ingest_dropped_counter_ = nullptr;
  obs::Histogram* flush_hist_ = nullptr;
};

}  // namespace evfl::stream
