// Per-zone streaming state machine — the parts of online detection that
// belong to exactly one zone, factored out of StreamPipeline so the
// sharded runtime (stream/sharded.hpp) runs the *same* semantics on every
// shard: window fill/churn, not-ready handling, edge repair, the
// threshold decision, winsorized adaptation, and drift-triggered
// re-seeding (DESIGN.md §14–15).
//
// The split is prepare/apply around the engine call:
//
//   prepare_sample()  — before scoring: advance the zone's sample clock
//                       (any step other than last_t + 1 is churn and
//                       resets the window), scale the raw value, and
//                       either extend a not-ready window or report the
//                       sample ready to stage;
//   apply_forecast()  — after scoring: square the forecast error, decide
//                       against the pre-observation threshold, append an
//                       event, fold the score in winsorized, let the
//                       drift probe re-seed the estimator, and extend the
//                       window with the stored (possibly repaired) value.
//
// Both functions touch only the one ZoneState plus caller-owned scratch
// and stats, so shard workers run them lock-free on disjoint zones — the
// determinism contract: a zone's outputs are a pure function of its own
// sample sequence, independent of shard count, round composition, or
// producer interleaving.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "anomaly/imputation.hpp"
#include "anomaly/threshold.hpp"
#include "data/scaler.hpp"

namespace evfl::stream {

/// One flagged sample.  `value`/`repaired` are in physical units
/// (scaler-inverted); `score`/`threshold` are in scaled-MSE space.
/// `repaired == value` when repair is disabled.
struct AnomalyEvent {
  std::uint32_t zone = 0;
  std::uint64_t t = 0;
  float value = 0.0f;
  float score = 0.0f;
  float threshold = 0.0f;
  float repaired = 0.0f;
};

/// Monotonic pipeline counters (snapshot; see stats()).
struct StreamStats {
  std::uint64_t samples_total = 0;    // ingested
  std::uint64_t scored_total = 0;     // staged through the engine
  std::uint64_t not_ready_total = 0;  // skipped: window shorter than lookback
  std::uint64_t gaps_total = 0;       // timestamp discontinuities (window resets)
  std::uint64_t events_total = 0;     // flagged anomalies pushed
  std::uint64_t events_dropped = 0;   // lost to event-queue back-pressure
  std::uint64_t repaired_total = 0;   // samples replaced at the window edge
  std::uint64_t nonfinite_inputs = 0; // NaN/Inf raw samples
  std::uint64_t nonfinite_scores = 0; // scores rejected before thresholding
  std::uint64_t reseeds_total = 0;    // drift-triggered threshold re-seeds
  std::uint64_t ingest_dropped = 0;   // samples lost to ingest-ring back-pressure
                                      // (sharded path only)
  std::uint64_t flushes_total = 0;
};

namespace detail {

/// One unprocessed sample in a zone's ingest-order queue.
struct PendingSample {
  std::uint64_t t = 0;
  float raw = 0.0f;
};

/// The behavior switches the zone machine needs from StreamConfig.
struct ZonePolicy {
  bool adapt_thresholds = true;
  bool repair_inputs = true;
};

/// Everything one zone owns.  Only its owning worker ever touches it.
struct ZoneState {
  data::MinMaxScaler scaler;
  std::vector<float> ring;  // lookback scaled values, ring order
  std::size_t head = 0;     // slot of the oldest value
  std::size_t filled = 0;   // not ready until filled == lookback
  std::uint64_t last_t = 0;
  bool has_last = false;
  anomaly::IncrementalThreshold estimator;
  anomaly::DriftProbe drift;  // disabled unless armed via init()
  float threshold = std::numeric_limits<float>::quiet_NaN();
  bool frozen = false;
  std::vector<PendingSample> queue;  // unprocessed samples, ingest order
  std::size_t cursor = 0;            // next unprocessed index

  /// Size every buffer up front (`queue_reserve` keeps enqueue
  /// allocation-free up to the auto-flush batch); `drift_z` <= 0 leaves
  /// the probe disabled.
  void init(const data::MinMaxScaler& fitted_scaler, std::size_t lookback,
            const anomaly::ThresholdRule& rule, double drift_z,
            std::size_t drift_window, std::size_t queue_reserve);

  void reset_window() {
    head = 0;
    filled = 0;
  }

  void push_window(float scaled, std::size_t lookback) {
    if (filled == lookback) {
      ring[head] = scaled;
      head = head + 1 == lookback ? 0 : head + 1;
    } else {
      ring[(head + filled) % lookback] = scaled;
      ++filled;
    }
  }

  /// Copy the window, oldest first, into `dst[0, lookback)` — a staging
  /// tensor row.
  void stage_window(float* dst, std::size_t lookback) const {
    for (std::size_t i = 0; i < lookback; ++i) {
      std::size_t j = head + i;
      if (j >= lookback) j -= lookback;
      dst[i] = ring[j];
    }
  }
};

/// Warm edge-repair scratch: the flags and the one-segment list are
/// constant (only the trailing point is ever under repair).  One per
/// serial worker — shard workers each own one; never share across
/// concurrent workers.
struct RepairScratch {
  std::vector<float> vals;
  std::vector<std::uint8_t> flags;
  std::vector<anomaly::Segment> segs;
  anomaly::ImputationConfig cfg;

  void init(std::size_t lookback);

  /// Paper-style linear repair at the live edge: the zone's window plus
  /// the new point, trailing point flagged, no right anchor -> hold the
  /// nearest trustworthy left neighbour.  Returns the repaired scaled
  /// value.
  float edge_repair(const ZoneState& z, std::size_t lookback);
};

/// Pre-score half of one sample: churn/gap bookkeeping, scaling, and the
/// not-ready path.  Returns true when the sample must be staged for the
/// engine (window full), leaving the scaled value in `scaled_out`;
/// returns false when the sample was fully handled here.
bool prepare_sample(ZoneState& z, const PendingSample& p,
                    std::size_t lookback, const ZonePolicy& pol,
                    RepairScratch& repair, StreamStats& stats,
                    float& scaled_out);

/// Post-score half: score = (forecast - scaled)², decide against the
/// pre-observation threshold, append any event to `events` (zone id
/// `zone`), adapt winsorized, run the drift probe, extend the window.
void apply_forecast(ZoneState& z, std::uint32_t zone,
                    const PendingSample& p, float scaled, float forecast,
                    std::size_t lookback, const ZonePolicy& pol,
                    RepairScratch& repair, StreamStats& stats,
                    std::vector<AnomalyEvent>& events);

}  // namespace detail
}  // namespace evfl::stream
