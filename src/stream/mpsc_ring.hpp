// MpscRing — the ingest side of the sharded streaming pipeline
// (DESIGN.md §15): a bounded multi-producer / single-consumer ring that
// generalizes BoundedQueue's contract (drop-oldest past the hard bound
// with an exact counted drop, storage that grows under bursts and shrinks
// back to a watermark on drain) to concurrent producers, with a
// reserve/commit fast path that takes no lock:
//
//  - push() claims a ticket with one CAS on the tail counter, writes its
//    slot, and publishes with one release store of the slot's sequence
//    number — in the common case (ring not full, no buffer swap in
//    flight) that is the entire path: no mutex, no retry loop beyond the
//    claim CAS, wait-free under no contention;
//  - a full ring (or an in-flight buffer swap) diverts the producer to a
//    mutex-guarded slow path that grows the buffer toward `max`, or at
//    `max` consumes the oldest committed entry in the consumer's stead
//    (drop-oldest with an exact count), then retries the fast path;
//  - drain() (single consumer) hands the committed prefix over in ticket
//    order and shrinks storage back to the watermark once the ring is
//    empty, so a burst cannot permanently pin its high-water memory;
//  - buffer swaps (grow/shrink) use a gate: producers register in an
//    in-flight counter before touching the buffer, the swapper sets the
//    gate and waits for that counter to drain, so no producer ever writes
//    a retired buffer.  Steady state (bursts within the watermark) never
//    gates, never locks on push, and never allocates.
//
// Claim-before-full is what makes the protocol deadlock-free: a ticket is
// only issued while `tail - head < capacity` held at the CAS, so a claimed
// slot is always free (or becomes free after a bounded commit-ordering
// window), and nobody ever waits on a producer that is itself blocked.
//
// Thread safety: any number of producers may push() concurrently with one
// drain()er; size()/dropped()/capacity() are safe from any thread
// (size/capacity are instantaneous snapshots).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace evfl::stream {

template <typename T>
class MpscRing {
 public:
  /// `max` bounds the entry count (drop-oldest beyond it); `shrink` is the
  /// storage watermark drain() returns capacity to.  8 <= shrink <= max —
  /// the floor keeps the claim window far wider than any realistic
  /// producer count.
  MpscRing(std::size_t max, std::size_t shrink)
      : max_(max), shrink_(shrink) {
    EVFL_REQUIRE(shrink >= 8 && shrink <= max,
                 "MpscRing needs 8 <= shrink <= max");
    storage_ = make_slots(shrink_, 0);
    buf_.store(storage_.get(), std::memory_order_release);
    cap_.store(shrink_, std::memory_order_release);
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Enqueue from any producer thread.  Fast path: one CAS + one release
  /// store.  Slow path (full ring / buffer swap): mutex, then grow or
  /// drop-oldest, then retry.
  void push(T value) {
    for (;;) {
      writers_.fetch_add(1, std::memory_order_seq_cst);
      if (!gate_.load(std::memory_order_seq_cst)) {
        Slot* buf = buf_.load(std::memory_order_acquire);
        const std::size_t cap = cap_.load(std::memory_order_acquire);
        std::uint64_t pos = tail_.load(std::memory_order_relaxed);
        // head_pub_ only advances, so a stale read under-counts free slots
        // — the check is conservative, never unsafe.
        while (pos - head_pub_.load(std::memory_order_acquire) < cap) {
          if (tail_.compare_exchange_weak(pos, pos + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
            Slot& s = buf[pos % cap];
            // The claim guarantees the slot's previous lap was consumed;
            // spin only for the consumer's seq store to become visible.
            while (s.seq.load(std::memory_order_acquire) != pos) {
              std::this_thread::yield();
            }
            s.value = std::move(value);
            s.seq.store(pos + 1, std::memory_order_release);
            writers_.fetch_sub(1, std::memory_order_release);
            return;
          }
        }
      }
      writers_.fetch_sub(1, std::memory_order_release);
      std::lock_guard<std::mutex> lock(mutex_);
      make_room_locked();
    }
  }

  /// Append the committed prefix to `out` in ticket (arrival) order, then
  /// shrink storage to the watermark if a burst grew it and the ring is
  /// now empty.  An entry claimed but not yet committed by a preempted
  /// producer stops the drain early (FIFO is never reordered around it);
  /// it is handed over by the next drain.  Single consumer.
  std::size_t drain(std::vector<T>& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    Slot* buf = buf_.load(std::memory_order_relaxed);
    const std::size_t cap = cap_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    std::size_t n = 0;
    while (head_ != tail) {
      Slot& s = buf[head_ % cap];
      if (s.seq.load(std::memory_order_acquire) != head_ + 1) break;
      out.push_back(std::move(s.value));
      s.seq.store(head_ + cap, std::memory_order_release);
      ++head_;
      ++n;
    }
    head_pub_.store(head_, std::memory_order_release);
    if (cap > shrink_ && head_ == tail_.load(std::memory_order_acquire)) {
      swap_buffer_locked(shrink_);
    }
    return n;
  }

  /// Entries lost to back-pressure since construction (monotonic, exact:
  /// every push is eventually drained or counted here).
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_acquire);
  }

  /// Instantaneous entry count (racy snapshot under concurrent pushes).
  std::size_t size() const {
    const std::uint64_t head = head_pub_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

  /// Current storage slots (watermark after a drain of a quiet ring).
  std::size_t capacity() const {
    return cap_.load(std::memory_order_acquire);
  }

  std::size_t max_entries() const { return max_; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  static std::unique_ptr<Slot[]> make_slots(std::size_t n,
                                            std::uint64_t first_seq) {
    auto slots = std::make_unique<Slot[]>(n);
    for (std::size_t i = 0; i < n; ++i) {
      slots[i].seq.store(first_seq + i, std::memory_order_relaxed);
    }
    return slots;
  }

  /// Under the mutex: give the caller's retry a chance to succeed — grow
  /// toward `max_` if a burst filled the current buffer, or consume the
  /// oldest committed entry (counted drop) once growth is exhausted.
  /// Either way at least one slot frees; a racing fast-path producer may
  /// still steal it, which the caller's retry loop absorbs.
  void make_room_locked() {
    const std::size_t cap = cap_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (tail - head_ < cap) return;  // a drain already made room
    if (cap < max_) {
      swap_buffer_locked(std::min(cap * 2, max_));
      return;
    }
    // At the hard bound: drop the oldest entry in the consumer's stead.
    Slot* buf = buf_.load(std::memory_order_relaxed);
    Slot& s = buf[head_ % cap];
    // The head entry may belong to a producer mid-commit; it holds no lock
    // and finishes in a bounded number of its own instructions.
    while (s.seq.load(std::memory_order_acquire) != head_ + 1) {
      std::this_thread::yield();
    }
    T discard = std::move(s.value);
    (void)discard;
    s.seq.store(head_ + cap, std::memory_order_release);
    ++head_;
    head_pub_.store(head_, std::memory_order_release);
    dropped_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Swap in a buffer of `new_cap` slots, relocating live entries to
  /// positions [0, count).  Caller holds the mutex.  The gate parks new
  /// producers on the mutex while in-flight ones finish against the old
  /// buffer; with `writers_ == 0` every issued ticket has committed, so
  /// the relocation sees only complete values and may renumber freely.
  void swap_buffer_locked(std::size_t new_cap) {
    gate_.store(true, std::memory_order_seq_cst);
    while (writers_.load(std::memory_order_seq_cst) != 0) {
      std::this_thread::yield();
    }
    Slot* old = buf_.load(std::memory_order_relaxed);
    const std::size_t cap = cap_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t count = tail - head_;
    EVFL_ASSERT(count <= new_cap, "MpscRing swap would lose entries");
    auto fresh = make_slots(new_cap, 0);
    for (std::uint64_t i = 0; i < count; ++i) {
      fresh[i].value = std::move(old[(head_ + i) % cap].value);
      fresh[i].seq.store(i + 1, std::memory_order_relaxed);
    }
    storage_ = std::move(fresh);
    buf_.store(storage_.get(), std::memory_order_release);
    cap_.store(new_cap, std::memory_order_release);
    head_ = 0;
    head_pub_.store(0, std::memory_order_release);
    tail_.store(count, std::memory_order_release);
    gate_.store(false, std::memory_order_seq_cst);
  }

  const std::size_t max_;
  const std::size_t shrink_;

  std::unique_ptr<Slot[]> storage_;
  std::atomic<Slot*> buf_{nullptr};
  std::atomic<std::size_t> cap_{0};

  std::atomic<std::uint64_t> tail_{0};      // next ticket
  std::uint64_t head_ = 0;                  // consumer/slow-path, under mutex
  std::atomic<std::uint64_t> head_pub_{0};  // head published to producers
  std::atomic<std::uint64_t> dropped_{0};

  std::atomic<std::uint32_t> writers_{0};  // producers touching the buffer
  std::atomic<bool> gate_{false};          // buffer swap in flight
  std::mutex mutex_;                       // slow path + consumer
};

}  // namespace evfl::stream
