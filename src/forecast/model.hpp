// Forecasting model builders (§II-C): LSTM(50) -> Dense(10, relu) ->
// Dense(1), identical for the centralized model and every federated client.
#pragma once

#include "nn/sequential.hpp"
#include "tensor/rng.hpp"

namespace evfl::forecast {

struct ForecasterConfig {
  std::size_t sequence_length = 24;  // SEQUENCE_LENGTH (hours of lookback)
  std::size_t lstm_units = 50;       // LSTM_UNITS
  std::size_t dense_units = 10;
  std::size_t input_features = 1;    // univariate charging volume
  float learning_rate = 1e-3f;       // LEARNING_RATE
  std::size_t batch_size = 32;
};

/// Build the paper's forecaster with eagerly-initialized weights (shapes are
/// fixed up front so federated weight exchange works before any forward).
nn::Sequential make_forecaster(const ForecasterConfig& cfg, tensor::Rng& rng);

/// Total trainable parameter count for a config (sanity checks / reports).
std::size_t forecaster_param_count(const ForecasterConfig& cfg);

}  // namespace evfl::forecast
