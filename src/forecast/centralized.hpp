// Centralized baseline (§II-C.1): all clients' sequence data is pooled and a
// single model trained jointly — the conventional architecture Fig. 1(a)
// the paper compares against.  For the fair comparison of §III-A, total
// gradient epochs match the federated budget (rounds x epochs_per_round).
#pragma once

#include <vector>

#include "data/window.hpp"
#include "forecast/model.hpp"
#include "nn/trainer.hpp"

namespace evfl::forecast {

struct CentralizedConfig {
  ForecasterConfig model;
  std::size_t epochs = 50;  // = FEDERATED_ROUNDS * EPOCHS_PER_ROUND
  std::size_t batch_size = 32;
};

struct CentralizedResult {
  nn::Sequential model;
  nn::FitHistory history;
  double train_seconds = 0.0;
};

/// Concatenate per-client datasets along the batch axis (shapes must agree).
data::SequenceDataset pool_datasets(
    const std::vector<data::SequenceDataset>& per_client);

CentralizedResult train_centralized(
    const std::vector<data::SequenceDataset>& per_client,
    const CentralizedConfig& cfg, tensor::Rng& rng);

}  // namespace evfl::forecast
