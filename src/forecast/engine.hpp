// forecast::Engine — batched, steady-state-allocation-free inference
// serving (DESIGN.md §13).
//
// The training path (nn::Trainer) is tuned for gradient work; serving has
// a different shape: many concurrent series, one forward pass each, no
// caches for backward, and a federated round that wants to swap in new
// global weights without stalling queries.  The engine therefore:
//
//  - freezes a trained forecaster's flat weight vector into an immutable
//    Snapshot (fp32, or int8 block-quantized on the nn/quant.hpp grid the
//    wire codec uses);
//  - scores B series per call through the same fused [B, 4H] gate blocks
//    and cache-blocked matmul kernels as training, with all temporaries
//    borrowed from the per-thread runtime::Workspace lane — zero heap
//    allocations per batch after warmup;
//  - double-buffers snapshots: publish() freezes into the inactive slot
//    and flips an atomic index, so readers never block on a swap (the
//    single publisher waits for stragglers on the slot it reuses);
//  - records batch latency (obs::Histogram p50/p99) and forecasts/sec
//    counters into an optional obs::Registry.
//
// Determinism and precision tiers: a batch-of-1 fp32 score replicates
// Lstm/Dense forward op-for-op on the same kernels — bit-identical to the
// single-series Sequential::predict result.  Wide batches (and all int8
// scoring) switch the gate nonlinearities to a vectorized rational
// tanh/sigmoid (|err| ~1e-7, the dominant serving cost otherwise: scalar
// expf/tanh are ~60% of forward time at the paper shape), so a wide-batch
// row agrees with predict to ~1e-5 rather than bitwise.  Both tiers are
// individually deterministic: a row's result depends only on its own data
// and the tier, never on batch composition or thread schedule (rows are
// independent; output order is index order; serial == pool-parallel
// bitwise within a tier).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "forecast/model.hpp"
#include "obs/telemetry.hpp"
#include "runtime/run_context.hpp"
#include "tensor/matrix.hpp"
#include "tensor/tensor3.hpp"

namespace evfl::forecast {

/// Weight storage for a frozen snapshot: fp32, or int8 block-quantized
/// (per-block scales, nn/quant.hpp grid) for cache footprint and integer
/// arithmetic in the recurrent matmul.  Under kInt8 the recurrent weight
/// codes are confined to ±63 (7 of the 8 bits) so the unsigned-activation
/// maddubs kernel is saturation-free — see detail::QuantMat.
enum class ServePrecision { kFp32, kInt8 };

/// "fp32" / "int8".
std::string to_string(ServePrecision p);

struct EngineConfig {
  /// Largest batch one score() call accepts (scratch sizing contract; the
  /// workspace warms up to this and never grows past it).
  std::size_t max_batch = 256;
  ServePrecision precision = ServePrecision::kFp32;
};

namespace detail {

/// Quantized weight matrix in the serving layout.  Weight codes are
/// 7-bit (±63) on the shared nn/quant.hpp 256-element block grid, stored
/// int8 in 16-column panels with k interleaved in quads: within a panel,
/// byte `lane*4 + k%4` of quad k/4 holds w[k][panel*16 + lane].  That
/// feeds vpmaddubsw directly: activations are quantized unsigned (±127
/// around a fixed zero point of 128) and broadcast four-k at a time, and
/// 255·63·2 < 2^15 means the pairwise s16 sums can never saturate — the
/// integer dot products are exact, so SIMD and scalar scoring agree
/// bit-for-bit.  The unsigned offset is removed exactly in the epilogue:
/// dot_s8 = dot_u8 - 128·Σcodes, with 128·Σcodes precomputed per
/// (kblock, column) in colsum128.  Scales/colsum are stored
/// [kblock][padded col] so the float epilogue loads 8 consecutive
/// columns per vector.
struct QuantMat {
  std::vector<std::int8_t> codes;       // [kblock][panel][kquad][16·4]
  std::vector<float> scales;            // [kblock][padded_cols]
  std::vector<std::int32_t> colsum128;  // [kblock][padded_cols]
  std::size_t k = 0;            // logical inner dimension
  std::size_t cols = 0;         // logical output columns
  std::size_t padded_k = 0;     // per-row activation codes (quad-padded)
  std::size_t padded_cols = 0;  // cols rounded up to 16
  std::size_t kblocks = 0;      // ceil(k / nn::kQuantBlockSize)
};

}  // namespace detail

/// Batched serving engine for the paper's LSTM/Dense forecaster.  Thread
/// safety: any number of threads may call score() concurrently; publish()
/// is single-publisher (the federated round loop) and may run concurrently
/// with scores.  score() never blocks on publish(); publish() spin-yields
/// until the slot it is about to overwrite has drained its readers.
class Engine {
 public:
  /// `registry` is optional; when set, the engine records
  /// engine.batch_seconds (histogram), engine.forecasts_total /
  /// engine.batches_total (counters) and engine.snapshot_version (gauge).
  /// The registry must outlive the engine.
  explicit Engine(const ForecasterConfig& model, const EngineConfig& cfg = {},
                  obs::Registry* registry = nullptr);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Freeze `flat_weights` (Sequential::get_weights layout) into the
  /// inactive snapshot slot and make it current.  Allocation is allowed
  /// here (it reuses slot capacity after the second publish per slot);
  /// scoring threads keep running against the old snapshot throughout.
  void publish(const std::vector<float>& flat_weights);

  /// Number of publishes so far; 0 means score() is not yet legal.
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Score a batch: one forecast per series, out[i] = f(x[i, :, :]),
  /// deterministic index order.  `x` is [batch <= max_batch, time,
  /// input_features]; `out` must hold batch() floats.  Passing a RunContext
  /// with a pool parallelizes across rows (note: ThreadPool dispatch itself
  /// allocates; the zero-alloc steady-state contract is for the serial
  /// path, which is what bench_serving --check-allocs pins).
  void score(const tensor::Tensor3& x, float* out,
             const runtime::RunContext* ctx = nullptr);

  /// Convenience overload resizing `out` (allocation-free once warm).
  void score(const tensor::Tensor3& x, std::vector<float>& out,
             const runtime::RunContext* ctx = nullptr);

  /// Score only the first `rows` samples of `x` (rows <= x.batch()),
  /// leaving the rest untouched — the rolling-window serving shape: a
  /// streaming caller keeps one warm max_batch staging tensor and fills
  /// however many zone windows became ready this flush, so scoring a
  /// partial batch must not require reshaping (and reallocating) the
  /// staging buffer.  Tier selection sees `rows` as the batch size, so a
  /// one-row prefix runs the exact fp32 tier just like a one-row tensor.
  void score_prefix(const tensor::Tensor3& x, std::size_t rows, float* out,
                    const runtime::RunContext* ctx = nullptr);

  const ForecasterConfig& model_config() const { return model_; }
  const EngineConfig& config() const { return cfg_; }

 private:
  /// One frozen weight set.  Compute weights are fp32 except the dominant
  /// recurrent kernel wh, which stays quantized under kInt8 (wx/w1/w2 are
  /// round-tripped through the int8 grid at freeze time, then dequantized
  /// — they are <10% of the parameters, so fp32 compute there costs
  /// nothing while keeping one code path).  The wide-batch tier reads the
  /// packed views: b_pad/wx_pad are the bias and input kernel zero-padded
  /// to the padded gate stride (zstride = 4H rounded up to 32) so the
  /// fused z-init writes whole padded rows, and wh_panels repacks wh into
  /// L1-resident 32-column panels ([panel][k][32]) so the register-blocked
  /// GEMM streams contiguous weights for every row of the batch.
  struct Snapshot {
    tensor::Matrix wx, wh, b;   // lstm (wh empty under kInt8)
    tensor::Matrix w1, b1;      // dense(relu)
    tensor::Matrix w2, b2;      // dense(linear)
    std::vector<float> b_pad;      // [zstride]
    std::vector<float> wx_pad;     // [input_features][zstride]
    std::vector<float> wh_panels;  // [zstride/32][H][32] (fp32 only)
    detail::QuantMat wh_q;         // quantized recurrent kernel (kInt8)
    std::size_t zstride = 0;
    bool quantized = false;
  };

  void freeze_into(Snapshot& snap, const std::vector<float>& flat);
  void quant_roundtrip(tensor::Matrix& m, std::size_t rows, std::size_t cols,
                       const float* src);
  std::uint32_t acquire_slot();
  /// `exact` selects the reference scalar gate path (batch-of-1 fp32
  /// bit-identity contract); it is decided once per score() call from the
  /// FULL batch size, never per row chunk, so serial and pool-parallel
  /// partitions always run the same tier.
  void score_rows(const Snapshot& snap, const tensor::Tensor3& x, float* out,
                  std::size_t row_begin, std::size_t row_end,
                  bool exact) const;

  ForecasterConfig model_;
  EngineConfig cfg_;

  Snapshot slots_[2];
  std::atomic<std::uint32_t> active_{0};
  std::atomic<std::uint32_t> readers_[2] = {0, 0};
  std::atomic<std::uint64_t> version_{0};

  // publish-time scratch (single publisher, reused across rounds)
  std::vector<float> freeze_col_;
  std::vector<float> freeze_scales_;
  std::vector<std::int8_t> freeze_quants_;

  obs::Histogram* latency_ = nullptr;
  obs::Counter* forecasts_ = nullptr;
  obs::Counter* batches_ = nullptr;
  obs::Gauge* version_gauge_ = nullptr;
};

}  // namespace evfl::forecast
