#include "forecast/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <thread>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "common/error.hpp"
#include "metrics/timer.hpp"
#include "nn/activation.hpp"
#include "nn/quant.hpp"
#include "runtime/workspace.hpp"

namespace evfl::forecast {

namespace {

using tensor::ConstMatView;
using tensor::MatView;

/// fp32 panel width: the packed recurrent kernel computes 32 output
/// columns (4 ymm accumulators) per pass, and the padded gate stride is a
/// multiple of this so panel stores never cross a row.
constexpr std::size_t kPanelF32 = 32;
/// int8 panel width: 16 output columns per pass (2 ymm of s32 dots).
constexpr std::size_t kPanelS8 = 16;
/// int8 k interleave: vpmaddubsw + vpmaddwd consume 4 k's per column.
constexpr std::size_t kQuad = 4;

std::size_t roundup(std::size_t n, std::size_t m) {
  return (n + m - 1) / m * m;
}

// ---------------------------------------------------------------------
// Fast gate nonlinearities (wide-batch fp32 and all int8 scoring).
//
// At the paper shape the scalar expf/tanh gate math costs more than the
// recurrent matmul itself, so the wide-batch tier evaluates tanh as a
// clamped odd rational P13(x)/Q6(x) (the classic single-precision
// minimax fit used by several inference runtimes; |err| is a few float
// ulp across the clamp range) and sigmoid via the tanh half-angle
// identity.  SIMD lanes and the scalar tail evaluate the same Horner
// forms, and a given gate column is always handled by the same form, so
// results are deterministic and independent of row partitioning.
// ---------------------------------------------------------------------

constexpr float kTanhClamp = 7.90531110763549805f;
constexpr float kTanhA1 = 4.89352455891786e-03f;
constexpr float kTanhA3 = 6.37261928875436e-04f;
constexpr float kTanhA5 = 1.48572235717979e-05f;
constexpr float kTanhA7 = 5.12229709037114e-08f;
constexpr float kTanhA9 = -8.60467152213735e-11f;
constexpr float kTanhA11 = 2.00018790482477e-13f;
constexpr float kTanhA13 = -2.76076847742355e-16f;
constexpr float kTanhB0 = 4.89352518554385e-03f;
constexpr float kTanhB2 = 2.26843463243900e-03f;
constexpr float kTanhB4 = 1.18534705686654e-04f;
constexpr float kTanhB6 = 1.19825839466702e-06f;

inline float tanh_fast1(float x) {
  x = std::clamp(x, -kTanhClamp, kTanhClamp);
  const float x2 = x * x;
  float p = kTanhA13;
  p = p * x2 + kTanhA11;
  p = p * x2 + kTanhA9;
  p = p * x2 + kTanhA7;
  p = p * x2 + kTanhA5;
  p = p * x2 + kTanhA3;
  p = p * x2 + kTanhA1;
  float q = kTanhB6;
  q = q * x2 + kTanhB4;
  q = q * x2 + kTanhB2;
  q = q * x2 + kTanhB0;
  return (p * x) / q;
}

inline float sigmoid_fast1(float x) {
  return 0.5f * tanh_fast1(0.5f * x) + 0.5f;
}

#if defined(__AVX2__)

inline __m256 poly_step(__m256 p, __m256 x2, float c) {
#if defined(__FMA__)
  return _mm256_fmadd_ps(p, x2, _mm256_set1_ps(c));
#else
  return _mm256_add_ps(_mm256_mul_ps(p, x2), _mm256_set1_ps(c));
#endif
}

inline __m256 mul_add(__m256 a, __m256 b, __m256 c) {
#if defined(__FMA__)
  return _mm256_fmadd_ps(a, b, c);
#else
  return _mm256_add_ps(_mm256_mul_ps(a, b), c);
#endif
}

inline __m256 tanh_fast8(__m256 x) {
  const __m256 clamp = _mm256_set1_ps(kTanhClamp);
  x = _mm256_max_ps(_mm256_min_ps(x, clamp),
                    _mm256_sub_ps(_mm256_setzero_ps(), clamp));
  const __m256 x2 = _mm256_mul_ps(x, x);
  __m256 p = _mm256_set1_ps(kTanhA13);
  p = poly_step(p, x2, kTanhA11);
  p = poly_step(p, x2, kTanhA9);
  p = poly_step(p, x2, kTanhA7);
  p = poly_step(p, x2, kTanhA5);
  p = poly_step(p, x2, kTanhA3);
  p = poly_step(p, x2, kTanhA1);
  __m256 q = _mm256_set1_ps(kTanhB6);
  q = poly_step(q, x2, kTanhB4);
  q = poly_step(q, x2, kTanhB2);
  q = poly_step(q, x2, kTanhB0);
  return _mm256_div_ps(_mm256_mul_ps(p, x), q);
}

inline __m256 sigmoid_fast8(__m256 x) {
  const __m256 half = _mm256_set1_ps(0.5f);
  return mul_add(half, tanh_fast8(_mm256_mul_ps(half, x)), half);
}

#endif  // __AVX2__

/// Fused gate activation + cell update for one row: reads the four gate
/// segments of z (pre-activations), updates c and h in place.  One pass,
/// no intermediate gate writes.  c = σ(f)·c + σ(i)·tanh(g);
/// h = σ(o)·tanh(c).  When kTrackMax, also returns max|h| over the row —
/// the int8 tier needs it to scale next step's activation quantization,
/// and folding it here saves quantize_rows_u8 a full extra pass over h.
template <bool kTrackMax>
float fused_gates_cell(const float* zr, float* cs, float* hs, std::size_t h) {
  float hmax = 0.0f;
  std::size_t k = 0;
#if defined(__AVX2__)
  const __m256 signmask = _mm256_set1_ps(-0.0f);
  __m256 hm = _mm256_setzero_ps();
  for (; k + 8 <= h; k += 8) {
    const __m256 gi = sigmoid_fast8(_mm256_loadu_ps(zr + k));
    const __m256 gf = sigmoid_fast8(_mm256_loadu_ps(zr + h + k));
    const __m256 gg = tanh_fast8(_mm256_loadu_ps(zr + 2 * h + k));
    const __m256 go = sigmoid_fast8(_mm256_loadu_ps(zr + 3 * h + k));
    const __m256 c =
        mul_add(gf, _mm256_loadu_ps(cs + k), _mm256_mul_ps(gi, gg));
    _mm256_storeu_ps(cs + k, c);
    const __m256 hv = _mm256_mul_ps(go, tanh_fast8(c));
    _mm256_storeu_ps(hs + k, hv);
    if constexpr (kTrackMax) {
      hm = _mm256_max_ps(hm, _mm256_andnot_ps(signmask, hv));
    }
  }
  if constexpr (kTrackMax) {
    alignas(32) float tmp[8];
    _mm256_store_ps(tmp, hm);
    for (int i = 0; i < 8; ++i) hmax = std::max(hmax, tmp[i]);
  }
#endif
  for (; k < h; ++k) {
    const float gi = sigmoid_fast1(zr[k]);
    const float gf = sigmoid_fast1(zr[h + k]);
    const float gg = tanh_fast1(zr[2 * h + k]);
    const float go = sigmoid_fast1(zr[3 * h + k]);
    const float c = gf * cs[k] + gi * gg;
    cs[k] = c;
    const float hv = go * tanh_fast1(c);
    hs[k] = hv;
    if constexpr (kTrackMax) hmax = std::max(hmax, std::fabs(hv));
  }
  return hmax;
}

/// z[r][0..zstride) = b_pad + Σ_f x[r][f]·wx_pad[f] in a single pass —
/// replaces the memset + bias-broadcast + input-matmul trio of the exact
/// tier.  Padding columns are zero in b_pad/wx_pad, so the z padding is
/// always a defined 0.
void fused_init_z(float* z, std::size_t zstride, std::size_t nb,
                  const float* xrow0, std::size_t xrow_stride, std::size_t in,
                  const std::vector<float>& b_pad,
                  const std::vector<float>& wx_pad) {
  for (std::size_t r = 0; r < nb; ++r) {
    float* zr = z + r * zstride;
    const float* xr = xrow0 + r * xrow_stride;
    const float x0 = xr[0];
    const float* w0 = wx_pad.data();
    for (std::size_t c = 0; c < zstride; ++c) {
      zr[c] = b_pad[c] + x0 * w0[c];
    }
    for (std::size_t f = 1; f < in; ++f) {
      const float xv = xr[f];
      const float* wf = wx_pad.data() + f * zstride;
      for (std::size_t c = 0; c < zstride; ++c) zr[c] += xv * wf[c];
    }
  }
}

#if defined(__AVX2__)
/// Register-blocked recurrent GEMM on the packed panel layout:
/// z[r][p·32..p·32+32) += h[r]·wh_panel(p).  Panels are looped outermost
/// so a ~H·32-float weight panel stays L1-resident across every row of
/// the batch (the naive row-major kernel re-streams the whole 4H·H
/// kernel from L2 per row, which is what made it memory-bound).  Two
/// rows share each weight load; per-column accumulation is ascending-k,
/// so results are independent of the row partition.
void gemm_f32_panels(const float* hbuf, std::size_t h, float* z,
                     std::size_t zstride, std::size_t nb,
                     const std::vector<float>& panels) {
  const std::size_t np = zstride / kPanelF32;
  for (std::size_t p = 0; p < np; ++p) {
    const float* wpanel = panels.data() + p * h * kPanelF32;
    const std::size_t j = p * kPanelF32;
    std::size_t r = 0;
    for (; r + 2 <= nb; r += 2) {
      const float* h0 = hbuf + r * h;
      const float* h1 = h0 + h;
      float* z0 = z + r * zstride + j;
      float* z1 = z0 + zstride;
      __m256 a00 = _mm256_loadu_ps(z0);
      __m256 a01 = _mm256_loadu_ps(z0 + 8);
      __m256 a02 = _mm256_loadu_ps(z0 + 16);
      __m256 a03 = _mm256_loadu_ps(z0 + 24);
      __m256 a10 = _mm256_loadu_ps(z1);
      __m256 a11 = _mm256_loadu_ps(z1 + 8);
      __m256 a12 = _mm256_loadu_ps(z1 + 16);
      __m256 a13 = _mm256_loadu_ps(z1 + 24);
      const float* wk = wpanel;
      for (std::size_t k = 0; k < h; ++k, wk += kPanelF32) {
        const __m256 w0 = _mm256_loadu_ps(wk);
        const __m256 w1 = _mm256_loadu_ps(wk + 8);
        const __m256 w2 = _mm256_loadu_ps(wk + 16);
        const __m256 w3 = _mm256_loadu_ps(wk + 24);
        const __m256 b0 = _mm256_set1_ps(h0[k]);
        const __m256 b1 = _mm256_set1_ps(h1[k]);
        a00 = mul_add(b0, w0, a00);
        a01 = mul_add(b0, w1, a01);
        a02 = mul_add(b0, w2, a02);
        a03 = mul_add(b0, w3, a03);
        a10 = mul_add(b1, w0, a10);
        a11 = mul_add(b1, w1, a11);
        a12 = mul_add(b1, w2, a12);
        a13 = mul_add(b1, w3, a13);
      }
      _mm256_storeu_ps(z0, a00);
      _mm256_storeu_ps(z0 + 8, a01);
      _mm256_storeu_ps(z0 + 16, a02);
      _mm256_storeu_ps(z0 + 24, a03);
      _mm256_storeu_ps(z1, a10);
      _mm256_storeu_ps(z1 + 8, a11);
      _mm256_storeu_ps(z1 + 16, a12);
      _mm256_storeu_ps(z1 + 24, a13);
    }
    for (; r < nb; ++r) {
      const float* h0 = hbuf + r * h;
      float* z0 = z + r * zstride + j;
      __m256 a00 = _mm256_loadu_ps(z0);
      __m256 a01 = _mm256_loadu_ps(z0 + 8);
      __m256 a02 = _mm256_loadu_ps(z0 + 16);
      __m256 a03 = _mm256_loadu_ps(z0 + 24);
      const float* wk = wpanel;
      for (std::size_t k = 0; k < h; ++k, wk += kPanelF32) {
        const __m256 b0 = _mm256_set1_ps(h0[k]);
        a00 = mul_add(b0, _mm256_loadu_ps(wk), a00);
        a01 = mul_add(b0, _mm256_loadu_ps(wk + 8), a01);
        a02 = mul_add(b0, _mm256_loadu_ps(wk + 16), a02);
        a03 = mul_add(b0, _mm256_loadu_ps(wk + 24), a03);
      }
      _mm256_storeu_ps(z0, a00);
      _mm256_storeu_ps(z0 + 8, a01);
      _mm256_storeu_ps(z0 + 16, a02);
      _mm256_storeu_ps(z0 + 24, a03);
    }
  }
}
#endif  // __AVX2__

/// Quantize activation rows for the unsigned int8 kernel: per-row
/// symmetric scale maxabs/127 (dynamic — no calibration pass; hmax[r] =
/// max|h| comes precomputed from the gates pass), codes stored u8 around
/// zero point 128 at quad-padded offsets (padding code 128 ≡ 0, and the
/// matching weight padding codes are 0, so padding adds nothing).
/// Rounding is nearest-even on both the SIMD (cvtps2dq) and scalar
/// (nearbyint) paths, so the codes are identical either way.
void quantize_rows_u8(const float* hbuf, std::size_t h, std::size_t nb,
                      const float* hmax, std::uint8_t* aq, float* ascale,
                      std::size_t padded_k) {
  const int qmax = nn::quant_qmax(8);  // 127: activations keep all 8 bits
  for (std::size_t r = 0; r < nb; ++r) {
    const float* src = hbuf + r * h;
    std::uint8_t* dst = aq + r * padded_k;
    const float maxabs = hmax[r];
    const float scale =
        maxabs > 0.0f ? maxabs / static_cast<float>(qmax) : 0.0f;
    const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
    ascale[r] = scale;
    std::size_t k = 0;
#if defined(__AVX2__)
    {
      const __m256 invv = _mm256_set1_ps(inv);
      const __m256i off = _mm256_set1_epi32(128);
      const __m256i lo = _mm256_set1_epi32(-qmax);
      const __m256i hi = _mm256_set1_epi32(qmax);
      for (; k + 8 <= h; k += 8) {
        __m256i q =
            _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(src + k), invv));
        q = _mm256_max_epi32(lo, _mm256_min_epi32(hi, q));
        q = _mm256_add_epi32(q, off);
        const __m128i w16 = _mm_packs_epi32(_mm256_castsi256_si128(q),
                                            _mm256_extracti128_si256(q, 1));
        _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + k),
                         _mm_packus_epi16(w16, w16));
      }
    }
#endif
    for (; k < h; ++k) {
      const int q = std::clamp(static_cast<int>(std::nearbyint(src[k] * inv)),
                               -qmax, qmax);
      dst[k] = static_cast<std::uint8_t>(q + 128);
    }
    for (; k < padded_k; ++k) dst[k] = 128;
  }
}

/// z[r][j] += dot(a_s8[r], w_s7[:, j]) · ascale[r] · wscale[kb][j] — the
/// quantized recurrent matmul on the quad-interleaved panel layout (see
/// detail::QuantMat).  The integer dots are exact and the float epilogue
/// runs once per (row, kblock, column) in ascending kblock order on both
/// the SIMD and scalar paths, so the two agree bitwise.
void gemm_u8s7(const std::uint8_t* aq, std::size_t a_stride,
               const float* ascale, std::size_t nb, const detail::QuantMat& w,
               float* z, std::size_t zstride) {
  const std::size_t panels = w.padded_cols / kPanelS8;
  std::size_t code_off = 0;  // start of this kblock's codes
  std::size_t akoff = 0;     // start of this kblock's activation codes
  for (std::size_t kb = 0; kb < w.kblocks; ++kb) {
    const std::size_t cnt =
        std::min(nn::kQuantBlockSize, w.k - kb * nn::kQuantBlockSize);
    const std::size_t kq_b = (cnt + kQuad - 1) / kQuad;
    const float* ws = w.scales.data() + kb * w.padded_cols;
    const std::int32_t* fix = w.colsum128.data() + kb * w.padded_cols;
#if defined(__AVX2__)
    // Panels outermost, then 4-row groups: the ~kq_b·64-byte weight panel
    // and the per-panel fixup/scale vectors are loaded once per four rows
    // instead of once per row.  The integer dots are exact, so a row's
    // result is bitwise the same whether it lands in a 4-group or the
    // tail — chunking from parallel_for cannot change outputs.
    const __m256i ones = _mm256_set1_epi16(1);
    for (std::size_t p = 0; p < panels; ++p) {
      const std::int8_t* wp = w.codes.data() + code_off + p * kq_b * 64;
      const std::size_t j = p * kPanelS8;
      const __m256i f0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(fix + j));
      const __m256i f1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(fix + j + 8));
      const __m256 ws0 = _mm256_loadu_ps(ws + j);
      const __m256 ws1 = _mm256_loadu_ps(ws + j + 8);
      const auto epilogue = [&](__m256i acc0, __m256i acc1, std::size_t r) {
        float* zrow = z + r * zstride;
        const __m256 asv = _mm256_set1_ps(ascale[r]);
        const __m256 d0 = _mm256_cvtepi32_ps(_mm256_sub_epi32(acc0, f0));
        const __m256 d1 = _mm256_cvtepi32_ps(_mm256_sub_epi32(acc1, f1));
        _mm256_storeu_ps(zrow + j, mul_add(d0, _mm256_mul_ps(asv, ws0),
                                           _mm256_loadu_ps(zrow + j)));
        _mm256_storeu_ps(zrow + j + 8,
                         mul_add(d1, _mm256_mul_ps(asv, ws1),
                                 _mm256_loadu_ps(zrow + j + 8)));
      };
      std::size_t r = 0;
      for (; r + 4 <= nb; r += 4) {
        const std::uint8_t* a0 = aq + r * a_stride + akoff;
        const std::uint8_t* a1 = a0 + a_stride;
        const std::uint8_t* a2 = a1 + a_stride;
        const std::uint8_t* a3 = a2 + a_stride;
        __m256i c00 = _mm256_setzero_si256(), c01 = _mm256_setzero_si256();
        __m256i c10 = _mm256_setzero_si256(), c11 = _mm256_setzero_si256();
        __m256i c20 = _mm256_setzero_si256(), c21 = _mm256_setzero_si256();
        __m256i c30 = _mm256_setzero_si256(), c31 = _mm256_setzero_si256();
        for (std::size_t kq = 0; kq < kq_b; ++kq) {
          const __m256i w0 = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(wp + kq * 64));
          const __m256i w1 = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(wp + kq * 64 + 32));
          std::int32_t q0, q1, q2, q3;
          std::memcpy(&q0, a0 + kq * kQuad, sizeof(q0));
          std::memcpy(&q1, a1 + kq * kQuad, sizeof(q1));
          std::memcpy(&q2, a2 + kq * kQuad, sizeof(q2));
          std::memcpy(&q3, a3 + kq * kQuad, sizeof(q3));
          const __m256i av0 = _mm256_set1_epi32(q0);
          const __m256i av1 = _mm256_set1_epi32(q1);
          const __m256i av2 = _mm256_set1_epi32(q2);
          const __m256i av3 = _mm256_set1_epi32(q3);
          c00 = _mm256_add_epi32(
              c00, _mm256_madd_epi16(_mm256_maddubs_epi16(av0, w0), ones));
          c01 = _mm256_add_epi32(
              c01, _mm256_madd_epi16(_mm256_maddubs_epi16(av0, w1), ones));
          c10 = _mm256_add_epi32(
              c10, _mm256_madd_epi16(_mm256_maddubs_epi16(av1, w0), ones));
          c11 = _mm256_add_epi32(
              c11, _mm256_madd_epi16(_mm256_maddubs_epi16(av1, w1), ones));
          c20 = _mm256_add_epi32(
              c20, _mm256_madd_epi16(_mm256_maddubs_epi16(av2, w0), ones));
          c21 = _mm256_add_epi32(
              c21, _mm256_madd_epi16(_mm256_maddubs_epi16(av2, w1), ones));
          c30 = _mm256_add_epi32(
              c30, _mm256_madd_epi16(_mm256_maddubs_epi16(av3, w0), ones));
          c31 = _mm256_add_epi32(
              c31, _mm256_madd_epi16(_mm256_maddubs_epi16(av3, w1), ones));
        }
        epilogue(c00, c01, r);
        epilogue(c10, c11, r + 1);
        epilogue(c20, c21, r + 2);
        epilogue(c30, c31, r + 3);
      }
      for (; r < nb; ++r) {
        const std::uint8_t* a0 = aq + r * a_stride + akoff;
        __m256i acc0 = _mm256_setzero_si256();
        __m256i acc1 = _mm256_setzero_si256();
        for (std::size_t kq = 0; kq < kq_b; ++kq) {
          std::int32_t quad;
          std::memcpy(&quad, a0 + kq * kQuad, sizeof(quad));
          const __m256i av = _mm256_set1_epi32(quad);
          const __m256i w0 = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(wp + kq * 64));
          const __m256i w1 = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(wp + kq * 64 + 32));
          acc0 = _mm256_add_epi32(
              acc0, _mm256_madd_epi16(_mm256_maddubs_epi16(av, w0), ones));
          acc1 = _mm256_add_epi32(
              acc1, _mm256_madd_epi16(_mm256_maddubs_epi16(av, w1), ones));
        }
        epilogue(acc0, acc1, r);
      }
    }
#else
    for (std::size_t r = 0; r < nb; ++r) {
      const std::uint8_t* arow = aq + r * a_stride;
      float* zrow = z + r * zstride;
      const float as = ascale[r];
      for (std::size_t j = 0; j < w.cols; ++j) {
        const std::size_t p = j / kPanelS8;
        const std::size_t lane = j % kPanelS8;
        const std::int8_t* wp = w.codes.data() + code_off + p * kq_b * 64;
        std::int32_t acc = 0;
        for (std::size_t kk = 0; kk < kq_b * kQuad; ++kk) {
          const int a_s = static_cast<int>(arow[akoff + kk]) - 128;
          acc += a_s * static_cast<std::int32_t>(
                           wp[(kk / kQuad) * 64 + lane * kQuad + kk % kQuad]);
        }
        zrow[j] += static_cast<float>(acc) * (as * ws[j]);
      }
    }
#endif
    code_off += panels * kq_b * 64;
    akoff += kq_b * kQuad;
  }
}

/// Build the quad-interleaved 7-bit layout from a row-major [k x cols]
/// fp32 kernel, quantizing each output column independently on the
/// shared nn/quant.hpp grid (a column sees coherent value ranges, which
/// is exactly what per-block scaling wants).
void build_quant_mat(const float* w, std::size_t k, std::size_t cols,
                     detail::QuantMat& q, std::vector<float>& coltmp,
                     std::vector<float>& stmp,
                     std::vector<std::int8_t>& ctmp) {
  q.k = k;
  q.cols = cols;
  q.kblocks = (k + nn::kQuantBlockSize - 1) / nn::kQuantBlockSize;
  q.padded_cols = roundup(cols, kPanelS8);
  q.padded_k = 0;
  std::size_t total_quads = 0;
  for (std::size_t lo = 0; lo < k; lo += nn::kQuantBlockSize) {
    const std::size_t cnt = std::min(nn::kQuantBlockSize, k - lo);
    q.padded_k += roundup(cnt, kQuad);
    total_quads += roundup(cnt, kQuad) / kQuad;
  }
  const std::size_t panels = q.padded_cols / kPanelS8;
  q.codes.assign(panels * total_quads * 64, 0);
  q.scales.assign(q.kblocks * q.padded_cols, 0.0f);
  q.colsum128.assign(q.kblocks * q.padded_cols, 0);
  coltmp.resize(k);
  for (std::size_t j = 0; j < cols; ++j) {
    for (std::size_t kk = 0; kk < k; ++kk) coltmp[kk] = w[kk * cols + j];
    // 7-bit codes: qmax 63, so the maddubs pair sums stay below 2^15.
    nn::block_quantize(coltmp.data(), k, 7, stmp, ctmp);
    const std::size_t p = j / kPanelS8;
    const std::size_t lane = j % kPanelS8;
    std::size_t code_off = 0;
    for (std::size_t kb = 0; kb < q.kblocks; ++kb) {
      const std::size_t lo = kb * nn::kQuantBlockSize;
      const std::size_t cnt = std::min(nn::kQuantBlockSize, k - lo);
      const std::size_t kq_b = (cnt + kQuad - 1) / kQuad;
      q.scales[kb * q.padded_cols + j] = stmp[kb];
      std::int32_t sum = 0;
      std::int8_t* base = q.codes.data() + code_off + p * kq_b * 64;
      for (std::size_t i = 0; i < cnt; ++i) {
        const std::int8_t c = ctmp[lo + i];
        sum += c;
        base[(i / kQuad) * 64 + lane * kQuad + i % kQuad] = c;
      }
      q.colsum128[kb * q.padded_cols + j] = 128 * sum;
      code_off += panels * kq_b * 64;
    }
  }
}

/// Reshape-if-needed + copy (capacity reused when the shape is stable, so
/// the second publish into a slot does not allocate).
void assign_mat(tensor::Matrix& m, std::size_t rows, std::size_t cols,
                const float* src) {
  if (m.rows() != rows || m.cols() != cols) m = tensor::Matrix(rows, cols);
  std::memcpy(m.data(), src, rows * cols * sizeof(float));
}

}  // namespace

std::string to_string(ServePrecision p) {
  return p == ServePrecision::kInt8 ? "int8" : "fp32";
}

Engine::Engine(const ForecasterConfig& model, const EngineConfig& cfg,
               obs::Registry* registry)
    : model_(model), cfg_(cfg) {
  EVFL_REQUIRE(cfg_.max_batch > 0, "EngineConfig.max_batch must be > 0");
  readers_[0].store(0, std::memory_order_relaxed);
  readers_[1].store(0, std::memory_order_relaxed);
  if (registry != nullptr) {
    latency_ = &registry->histogram("engine.batch_seconds");
    forecasts_ = &registry->counter("engine.forecasts_total");
    batches_ = &registry->counter("engine.batches_total");
    version_gauge_ = &registry->gauge("engine.snapshot_version");
  }
}

void Engine::quant_roundtrip(tensor::Matrix& m, std::size_t rows,
                             std::size_t cols, const float* src) {
  const std::size_t n = rows * cols;
  nn::block_quantize(src, n, 8, freeze_scales_, freeze_quants_);
  if (m.rows() != rows || m.cols() != cols) m = tensor::Matrix(rows, cols);
  nn::block_dequantize(freeze_quants_.data(), freeze_scales_.data(), n,
                       m.data());
}

void Engine::freeze_into(Snapshot& snap, const std::vector<float>& flat) {
  const std::size_t h = model_.lstm_units;
  const std::size_t in = model_.input_features;
  const std::size_t d = model_.dense_units;
  const std::size_t g4 = 4 * h;

  // Sequential::get_weights layout: layer order, then param order within
  // layer, row-major within each matrix.
  const float* wx = flat.data();
  const float* wh = wx + in * g4;
  const float* b = wh + h * g4;
  const float* w1 = b + g4;
  const float* b1 = w1 + h * d;
  const float* w2 = b1 + d;
  const float* b2 = w2 + d;

  snap.quantized = cfg_.precision == ServePrecision::kInt8;
  snap.zstride = roundup(g4, kPanelF32);
  // Biases stay fp32 in both modes: they are O(params/50) bytes and
  // quantizing them buys nothing.
  assign_mat(snap.b, 1, g4, b);
  assign_mat(snap.b1, 1, d, b1);
  assign_mat(snap.b2, 1, 1, b2);
  if (snap.quantized) {
    quant_roundtrip(snap.wx, in, g4, wx);
    quant_roundtrip(snap.w1, h, d, w1);
    quant_roundtrip(snap.w2, d, 1, w2);
    build_quant_mat(wh, h, g4, snap.wh_q, freeze_col_, freeze_scales_,
                    freeze_quants_);
    snap.wh = tensor::Matrix();
    snap.wh_panels.clear();
  } else {
    assign_mat(snap.wx, in, g4, wx);
    assign_mat(snap.wh, h, g4, wh);
    assign_mat(snap.w1, h, d, w1);
    assign_mat(snap.w2, d, 1, w2);
    // Packed panels for the register-blocked wide-batch GEMM
    // ([panel][k][32], zero-padded columns).
    snap.wh_panels.assign(snap.zstride * h, 0.0f);
    for (std::size_t p = 0; p < snap.zstride / kPanelF32; ++p) {
      for (std::size_t k = 0; k < h; ++k) {
        for (std::size_t j = 0; j < kPanelF32; ++j) {
          const std::size_t col = p * kPanelF32 + j;
          if (col < g4) {
            snap.wh_panels[(p * h + k) * kPanelF32 + j] = wh[k * g4 + col];
          }
        }
      }
    }
  }
  // Padded bias / input kernel for the fused wide-batch z-init.  Under
  // kInt8 these come from the round-tripped wx so the fast tier serves
  // the same weights the snapshot advertises.
  snap.b_pad.assign(snap.zstride, 0.0f);
  std::memcpy(snap.b_pad.data(), b, g4 * sizeof(float));
  snap.wx_pad.assign(in * snap.zstride, 0.0f);
  const float* wx_src = snap.quantized ? snap.wx.data() : wx;
  for (std::size_t f = 0; f < in; ++f) {
    std::memcpy(snap.wx_pad.data() + f * snap.zstride, wx_src + f * g4,
                g4 * sizeof(float));
  }
}

void Engine::publish(const std::vector<float>& flat_weights) {
  EVFL_REQUIRE(flat_weights.size() == forecaster_param_count(model_),
               "Engine::publish: weight count mismatch (" +
                   std::to_string(flat_weights.size()) + " vs " +
                   std::to_string(forecaster_param_count(model_)) + ")");
  const std::uint32_t next = active_.load(std::memory_order_relaxed) ^ 1u;
  // Drain stragglers still scoring against the slot we are about to
  // overwrite (they acquired it before the previous publish flipped away
  // from it).  Readers never wait; only the publisher does.
  while (readers_[next].load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  freeze_into(slots_[next], flat_weights);
  active_.store(next, std::memory_order_release);
  version_.fetch_add(1, std::memory_order_release);
  if (version_gauge_ != nullptr) {
    version_gauge_->set(static_cast<double>(version()));
  }
}

std::uint32_t Engine::acquire_slot() {
  for (;;) {
    const std::uint32_t idx = active_.load(std::memory_order_acquire);
    readers_[idx].fetch_add(1, std::memory_order_acq_rel);
    // Publish may have flipped between the load and the increment; the
    // re-check makes the registration race-free: once it passes, any
    // publisher targeting this slot will see our count and wait.
    if (active_.load(std::memory_order_acquire) == idx) return idx;
    readers_[idx].fetch_sub(1, std::memory_order_release);
  }
}

void Engine::score(const tensor::Tensor3& x, float* out,
                   const runtime::RunContext* ctx) {
  score_prefix(x, x.batch(), out, ctx);
}

void Engine::score_prefix(const tensor::Tensor3& x, std::size_t rows,
                          float* out, const runtime::RunContext* ctx) {
  EVFL_REQUIRE(version_.load(std::memory_order_acquire) > 0,
               "Engine::score before any publish");
  const std::size_t batch = rows;
  EVFL_REQUIRE(batch > 0, "Engine::score: empty batch");
  EVFL_REQUIRE(batch <= x.batch(),
               "Engine::score_prefix: rows exceed the staging tensor");
  EVFL_REQUIRE(batch <= cfg_.max_batch,
               "Engine::score: batch " + std::to_string(batch) +
                   " exceeds max_batch " + std::to_string(cfg_.max_batch));
  EVFL_REQUIRE(x.features() == model_.input_features,
               "Engine::score: input feature mismatch");
  EVFL_REQUIRE(x.time() > 0, "Engine::score needs time >= 1");

  metrics::WallTimer timer;
  // Tier selection happens here, from the FULL batch size — batch-of-1
  // fp32 runs the reference scalar path (bit-identical to predict), wide
  // batches and int8 run the vectorized kernels.  Chunk sizes from
  // parallel_for never re-enter this decision.
  const bool exact = cfg_.precision == ServePrecision::kFp32 && batch == 1;
  const std::uint32_t slot = acquire_slot();
  const Snapshot& snap = slots_[slot];
  if (ctx != nullptr && ctx->parallel() && batch > 1) {
    // Rows are independent and land at fixed output offsets, so the
    // partition is deterministic regardless of schedule.
    ctx->parallel_for(batch, ctx->grain_for(batch),
                      [&](std::size_t b0, std::size_t b1) {
                        score_rows(snap, x, out, b0, b1, exact);
                      });
  } else {
    score_rows(snap, x, out, 0, batch, exact);
  }
  readers_[slot].fetch_sub(1, std::memory_order_release);

  if (latency_ != nullptr) latency_->record(timer.seconds());
  if (forecasts_ != nullptr) forecasts_->add(static_cast<double>(batch));
  if (batches_ != nullptr) batches_->add(1.0);
}

void Engine::score(const tensor::Tensor3& x, std::vector<float>& out,
                   const runtime::RunContext* ctx) {
  out.resize(x.batch());
  score(x, out.data(), ctx);
}

void Engine::score_rows(const Snapshot& snap, const tensor::Tensor3& x,
                        float* out, std::size_t row_begin,
                        std::size_t row_end, bool exact) const {
  const std::size_t nb = row_end - row_begin;
  const std::size_t h = model_.lstm_units;
  const std::size_t in = model_.input_features;
  const std::size_t d = model_.dense_units;
  const std::size_t g4 = 4 * h;
  const std::size_t zstride = snap.zstride;
  const std::size_t t_len = x.time();

  // All temporaries come from the calling thread's workspace lane and are
  // released on return — after the lane warms up, scoring never allocates.
  runtime::ScratchScope scratch(runtime::thread_workspace());
  float* z = scratch.borrow(nb * zstride);
  float* hbuf = scratch.borrow_zeroed(nb * h);   // h_0 = 0, like Lstm
  float* cbuf = scratch.borrow_zeroed(nb * h);   // c_0 = 0
  float* d1 = scratch.borrow(nb * d);
  float* o2 = scratch.borrow(nb);
  std::uint8_t* aq = nullptr;
  float* ascale = nullptr;
  float* hmax = nullptr;
  if (snap.quantized) {
    const std::size_t bytes = nb * snap.wh_q.padded_k;
    aq = reinterpret_cast<std::uint8_t*>(
        scratch.borrow((bytes + sizeof(float) - 1) / sizeof(float)));
    ascale = scratch.borrow(nb);
    hmax = scratch.borrow_zeroed(nb);  // max|h_0| = 0
  }

  const MatView zv{z, nb, g4, zstride};
  const ConstMatView hv{hbuf, nb, h, h};
  const float* x0 = x.data() + row_begin * t_len * in;

  if (exact) {
    // Reference tier (fp32 batch-of-1): the exact op sequence of
    // Lstm::forward (set_zero, add_row_broadcast, two accumulating
    // matmuls on the same view kernels, scalar sigmoidf/tanh), so the
    // output is bit-identical to training-path inference.
    float* xt = scratch.borrow(nb * in);
    float* ctbuf = scratch.borrow(nb * h);
    const ConstMatView xtv{xt, nb, in, in};
    const float* bptr = snap.b.data();
    for (std::size_t t = 0; t < t_len; ++t) {
      for (std::size_t r = 0; r < nb; ++r) {
        std::memcpy(xt + r * in, x0 + (r * t_len + t) * in,
                    in * sizeof(float));
      }
      for (std::size_t r = 0; r < nb; ++r) {
        std::memset(z + r * zstride, 0, g4 * sizeof(float));
      }
      for (std::size_t r = 0; r < nb; ++r) {
        float* zrow = z + r * zstride;
        for (std::size_t c = 0; c < g4; ++c) zrow[c] += bptr[c];
      }
      tensor::matmul_acc(xtv, snap.wx.view(), zv);
      tensor::matmul_acc(hv, snap.wh.view(), zv);
      for (std::size_t r = 0; r < nb; ++r) {
        float* zrow = z + r * zstride;
        for (std::size_t c = 0; c < 2 * h; ++c) {
          zrow[c] = nn::sigmoidf(zrow[c]);
        }
        for (std::size_t c = 2 * h; c < 3 * h; ++c) {
          zrow[c] = std::tanh(zrow[c]);
        }
        for (std::size_t c = 3 * h; c < 4 * h; ++c) {
          zrow[c] = nn::sigmoidf(zrow[c]);
        }
      }
      // c = f ⊙ c_prev + i ⊙ g ;  h = o ⊙ tanh(c)
      for (std::size_t r = 0; r < nb; ++r) {
        const float* zi = z + r * zstride;
        const float* zf = zi + h;
        const float* zg = zi + 2 * h;
        float* cs = cbuf + r * h;
        for (std::size_t c = 0; c < h; ++c) {
          cs[c] = zf[c] * cs[c] + zi[c] * zg[c];
        }
      }
      for (std::size_t r = 0; r < nb; ++r) {
        const float* cs = cbuf + r * h;
        float* ct = ctbuf + r * h;
        for (std::size_t c = 0; c < h; ++c) ct[c] = std::tanh(cs[c]);
      }
      for (std::size_t r = 0; r < nb; ++r) {
        const float* zo = z + r * zstride + 3 * h;
        const float* ct = ctbuf + r * h;
        float* hs = hbuf + r * h;
        for (std::size_t c = 0; c < h; ++c) hs[c] = zo[c] * ct[c];
      }
    }
  } else {
    // Wide-batch tier: fused z-init, register-blocked (or integer)
    // recurrent GEMM, fused rational gates + cell update.
    for (std::size_t t = 0; t < t_len; ++t) {
      fused_init_z(z, zstride, nb, x0 + t * in, t_len * in, in, snap.b_pad,
                   snap.wx_pad);
      if (snap.quantized) {
        quantize_rows_u8(hbuf, h, nb, hmax, aq, ascale, snap.wh_q.padded_k);
        gemm_u8s7(aq, snap.wh_q.padded_k, ascale, nb, snap.wh_q, z, zstride);
      } else {
#if defined(__AVX2__)
        gemm_f32_panels(hbuf, h, z, zstride, nb, snap.wh_panels);
#else
        tensor::matmul_acc(hv, snap.wh.view(), zv);
#endif
      }
      if (snap.quantized) {
        for (std::size_t r = 0; r < nb; ++r) {
          hmax[r] = fused_gates_cell<true>(z + r * zstride, cbuf + r * h,
                                           hbuf + r * h, h);
        }
      } else {
        for (std::size_t r = 0; r < nb; ++r) {
          fused_gates_cell<false>(z + r * zstride, cbuf + r * h, hbuf + r * h,
                                  h);
        }
      }
    }
  }

  // Dense(d, relu) then Dense(1, linear): zero → matmul_acc → bias →
  // activation, mirroring Dense::forward.
  std::memset(d1, 0, nb * d * sizeof(float));
  const MatView d1v{d1, nb, d, d};
  tensor::matmul_acc(hv, snap.w1.view(), d1v);
  const float* b1p = snap.b1.data();
  for (std::size_t r = 0; r < nb; ++r) {
    float* row = d1 + r * d;
    for (std::size_t c = 0; c < d; ++c) row[c] += b1p[c];
  }
  for (std::size_t r = 0; r < nb; ++r) {
    float* row = d1 + r * d;
    for (std::size_t c = 0; c < d; ++c) {
      row[c] = nn::apply_activation(nn::Activation::kRelu, row[c]);
    }
  }

  std::memset(o2, 0, nb * sizeof(float));
  const MatView o2v{o2, nb, 1, 1};
  tensor::matmul_acc(ConstMatView{d1, nb, d, d}, snap.w2.view(), o2v);
  const float b2s = snap.b2(0, 0);
  for (std::size_t r = 0; r < nb; ++r) out[row_begin + r] = o2[r] + b2s;
}

}  // namespace evfl::forecast
