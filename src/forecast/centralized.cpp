#include "forecast/centralized.hpp"

#include "metrics/timer.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace evfl::forecast {

data::SequenceDataset pool_datasets(
    const std::vector<data::SequenceDataset>& per_client) {
  EVFL_REQUIRE(!per_client.empty(), "pool_datasets: no clients");
  const std::size_t t = per_client.front().x.time();
  const std::size_t f = per_client.front().x.features();
  std::size_t total = 0;
  for (const auto& ds : per_client) {
    EVFL_REQUIRE(ds.x.time() == t && ds.x.features() == f,
                 "pool_datasets: incompatible window shapes");
    EVFL_REQUIRE(ds.x.batch() == ds.y.batch(), "pool_datasets: x/y mismatch");
    total += ds.x.batch();
  }

  data::SequenceDataset pooled;
  pooled.lookback = per_client.front().lookback;
  pooled.x = tensor::Tensor3(total, t, f);
  pooled.y = tensor::Tensor3(total, 1, 1);
  std::size_t row = 0;
  for (const auto& ds : per_client) {
    for (std::size_t i = 0; i < ds.x.batch(); ++i, ++row) {
      for (std::size_t tt = 0; tt < t; ++tt) {
        for (std::size_t ff = 0; ff < f; ++ff) {
          pooled.x(row, tt, ff) = ds.x(i, tt, ff);
        }
      }
      pooled.y(row, 0, 0) = ds.y(i, 0, 0);
    }
  }
  return pooled;
}

CentralizedResult train_centralized(
    const std::vector<data::SequenceDataset>& per_client,
    const CentralizedConfig& cfg, tensor::Rng& rng) {
  const data::SequenceDataset pooled = pool_datasets(per_client);

  CentralizedResult result{make_forecaster(cfg.model, rng), {}, 0.0};

  nn::MseLoss loss;
  nn::Adam adam(cfg.model.learning_rate);
  nn::Trainer trainer(result.model, loss, adam, rng);

  nn::FitConfig fit;
  fit.epochs = cfg.epochs;
  fit.batch_size = cfg.batch_size;

  const metrics::WallTimer timer;
  result.history = trainer.fit(pooled.x, pooled.y, fit);
  result.train_seconds = timer.seconds();
  return result;
}

}  // namespace evfl::forecast
