#include "forecast/baselines.hpp"

#include "common/error.hpp"
#include "data/scaler.hpp"
#include "data/window.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"
#include "tensor/linalg.hpp"

namespace evfl::forecast {

// ---- Persistence ------------------------------------------------------------

void PersistenceBaseline::fit(const std::vector<float>& train) {
  EVFL_REQUIRE(!train.empty(), "persistence: empty training series");
}

std::vector<float> PersistenceBaseline::predict(
    const std::vector<float>& series, std::size_t begin) {
  EVFL_REQUIRE(begin >= 1 && begin <= series.size(),
               "persistence: begin needs at least one step of history");
  std::vector<float> out;
  out.reserve(series.size() - begin);
  for (std::size_t i = begin; i < series.size(); ++i) {
    out.push_back(series[i - 1]);
  }
  return out;
}

// ---- Seasonal naive ---------------------------------------------------------

SeasonalNaiveBaseline::SeasonalNaiveBaseline(std::size_t season)
    : season_(season) {
  EVFL_REQUIRE(season > 0, "seasonal-naive: season must be positive");
}

void SeasonalNaiveBaseline::fit(const std::vector<float>& train) {
  EVFL_REQUIRE(train.size() > season_,
               "seasonal-naive: training shorter than one season");
}

std::vector<float> SeasonalNaiveBaseline::predict(
    const std::vector<float>& series, std::size_t begin) {
  EVFL_REQUIRE(begin >= season_, "seasonal-naive: not enough history");
  std::vector<float> out;
  out.reserve(series.size() - begin);
  for (std::size_t i = begin; i < series.size(); ++i) {
    out.push_back(series[i - season_]);
  }
  return out;
}

// ---- Seasonal AR ------------------------------------------------------------

SeasonalArBaseline::SeasonalArBaseline(std::size_t ar_order,
                                       std::size_t seasonal_lags,
                                       std::size_t season)
    : ar_order_(ar_order), seasonal_lags_(seasonal_lags), season_(season) {
  EVFL_REQUIRE(ar_order + seasonal_lags > 0, "seasonal-AR: no regressors");
  EVFL_REQUIRE(season > 0, "seasonal-AR: season must be positive");
}

std::string SeasonalArBaseline::name() const {
  return "seasonal-AR(" + std::to_string(ar_order_) + "," +
         std::to_string(seasonal_lags_) + "x" + std::to_string(season_) + ")";
}

std::size_t SeasonalArBaseline::max_lag() const {
  return std::max(ar_order_, seasonal_lags_ * season_);
}

std::vector<float> SeasonalArBaseline::features(
    const std::vector<float>& series, std::size_t t) const {
  std::vector<float> f;
  f.reserve(1 + ar_order_ + seasonal_lags_);
  f.push_back(1.0f);  // bias
  for (std::size_t i = 1; i <= ar_order_; ++i) f.push_back(series[t - i]);
  for (std::size_t j = 1; j <= seasonal_lags_; ++j) {
    f.push_back(series[t - j * season_]);
  }
  return f;
}

void SeasonalArBaseline::fit(const std::vector<float>& train) {
  const std::size_t lag = max_lag();
  EVFL_REQUIRE(train.size() > lag + 8,
               "seasonal-AR: training series too short for its lags");
  const std::size_t m = train.size() - lag;
  const std::size_t n = 1 + ar_order_ + seasonal_lags_;

  tensor::Matrix x(m, n);
  tensor::Matrix y(m, 1);
  for (std::size_t r = 0; r < m; ++r) {
    const std::vector<float> f = features(train, lag + r);
    for (std::size_t c = 0; c < n; ++c) x(r, c) = f[c];
    y(r, 0) = train[lag + r];
  }
  const tensor::Matrix w = tensor::least_squares(x, y, 1e-4f);
  coeffs_.assign(w.data(), w.data() + w.size());
  fitted_ = true;
}

std::vector<float> SeasonalArBaseline::predict(
    const std::vector<float>& series, std::size_t begin) {
  EVFL_REQUIRE(fitted_, "seasonal-AR: predict before fit");
  EVFL_REQUIRE(begin >= max_lag(), "seasonal-AR: not enough history");
  std::vector<float> out;
  out.reserve(series.size() - begin);
  for (std::size_t i = begin; i < series.size(); ++i) {
    const std::vector<float> f = features(series, i);
    double acc = 0.0;
    for (std::size_t c = 0; c < f.size(); ++c) acc += coeffs_[c] * f[c];
    out.push_back(static_cast<float>(acc));
  }
  return out;
}

// ---- MLP --------------------------------------------------------------------

struct MlpBaseline::Impl {
  std::size_t lookback;
  std::size_t hidden;
  std::size_t epochs;
  tensor::Rng rng;
  data::MinMaxScaler scaler;
  nn::Sequential model;
  bool fitted = false;

  Impl(std::size_t lb, std::size_t h, std::size_t ep, std::uint64_t seed)
      : lookback(lb), hidden(h), epochs(ep), rng(seed) {
    model.emplace<nn::Dense>(hidden, nn::Activation::kRelu, rng, lookback);
    model.emplace<nn::Dense>(hidden / 2, nn::Activation::kRelu, rng, hidden);
    model.emplace<nn::Dense>(1, nn::Activation::kLinear, rng, hidden / 2);
  }
};

MlpBaseline::MlpBaseline(std::size_t lookback, std::size_t hidden,
                         std::size_t epochs, std::uint64_t seed)
    : impl_(std::make_unique<Impl>(lookback, hidden, epochs, seed)) {
  EVFL_REQUIRE(lookback > 0 && hidden >= 2, "mlp: bad architecture");
}

MlpBaseline::~MlpBaseline() = default;

void MlpBaseline::fit(const std::vector<float>& train) {
  EVFL_REQUIRE(train.size() > impl_->lookback + 8,
               "mlp: training series too short");
  impl_->scaler.fit(train);
  const std::vector<float> scaled = impl_->scaler.transform(train);
  const data::SequenceDataset ds =
      data::make_forecast_sequences(scaled, impl_->lookback);

  // The MLP consumes the window as one flat feature vector: [N, 1, lookback].
  tensor::Tensor3 x(ds.x.batch(), 1, impl_->lookback);
  for (std::size_t i = 0; i < ds.x.batch(); ++i) {
    for (std::size_t t = 0; t < impl_->lookback; ++t) {
      x(i, 0, t) = ds.x(i, t, 0);
    }
  }

  nn::MseLoss loss;
  nn::Adam adam(1e-3f);
  nn::Trainer trainer(impl_->model, loss, adam, impl_->rng);
  nn::FitConfig fit;
  fit.epochs = impl_->epochs;
  fit.batch_size = 32;
  trainer.fit(x, ds.y, fit);
  impl_->fitted = true;
}

std::vector<float> MlpBaseline::predict(const std::vector<float>& series,
                                        std::size_t begin) {
  EVFL_REQUIRE(impl_->fitted, "mlp: predict before fit");
  EVFL_REQUIRE(begin >= impl_->lookback, "mlp: not enough history");
  const std::vector<float> scaled = impl_->scaler.transform(series);

  const std::size_t n = series.size() - begin;
  tensor::Tensor3 x(n, 1, impl_->lookback);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t t = 0; t < impl_->lookback; ++t) {
      x(i, 0, t) = scaled[begin + i - impl_->lookback + t];
    }
  }
  const tensor::Tensor3 pred = nn::predict_batched(impl_->model, x);
  std::vector<float> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(impl_->scaler.inverse_one(pred(i, 0, 0)));
  }
  return out;
}

std::vector<std::unique_ptr<BaselineForecaster>> make_all_baselines(
    std::size_t season) {
  std::vector<std::unique_ptr<BaselineForecaster>> out;
  out.push_back(std::make_unique<PersistenceBaseline>());
  out.push_back(std::make_unique<SeasonalNaiveBaseline>(season));
  out.push_back(std::make_unique<SeasonalArBaseline>(3, 2, season));
  out.push_back(std::make_unique<MlpBaseline>(season));
  return out;
}

}  // namespace evfl::forecast
