#include "forecast/model.hpp"

#include "nn/dense.hpp"
#include "nn/lstm.hpp"

namespace evfl::forecast {

nn::Sequential make_forecaster(const ForecasterConfig& cfg, tensor::Rng& rng) {
  using namespace nn;
  Sequential model;
  model.emplace<Lstm>(cfg.lstm_units, /*return_sequences=*/false, rng,
                      cfg.input_features);
  model.emplace<Dense>(cfg.dense_units, Activation::kRelu, rng,
                       cfg.lstm_units);
  model.emplace<Dense>(1, Activation::kLinear, rng, cfg.dense_units);
  return model;
}

std::size_t forecaster_param_count(const ForecasterConfig& cfg) {
  const std::size_t h = cfg.lstm_units;
  const std::size_t in = cfg.input_features;
  const std::size_t lstm = (in * 4 * h) + (h * 4 * h) + 4 * h;
  const std::size_t d1 = h * cfg.dense_units + cfg.dense_units;
  const std::size_t d2 = cfg.dense_units * 1 + 1;
  return lstm + d1 + d2;
}

}  // namespace evfl::forecast
