// Classical forecasting baselines from the paper's related-work discussion
// (§I cites ARIMA, traditional neural networks and other ML models as the
// approaches LSTM improves upon).  All share a common interface so the
// baselines bench can sweep them uniformly against the LSTM forecaster.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/rng.hpp"

namespace evfl::forecast {

/// One-step-ahead univariate forecaster trained on a raw series.
class BaselineForecaster {
 public:
  virtual ~BaselineForecaster() = default;
  virtual std::string name() const = 0;
  /// Fit on the training series (original units).
  virtual void fit(const std::vector<float>& train) = 0;
  /// Predict series[i] given all values before i, for i in
  /// [begin, series.size()).  `series` includes the training prefix so the
  /// model has history at the boundary.
  virtual std::vector<float> predict(const std::vector<float>& series,
                                     std::size_t begin) = 0;
};

/// Predict the previous value (random-walk baseline).
class PersistenceBaseline : public BaselineForecaster {
 public:
  std::string name() const override { return "persistence"; }
  void fit(const std::vector<float>& train) override;
  std::vector<float> predict(const std::vector<float>& series,
                             std::size_t begin) override;
};

/// Predict the value one season (default 24 h) earlier.
class SeasonalNaiveBaseline : public BaselineForecaster {
 public:
  explicit SeasonalNaiveBaseline(std::size_t season = 24);
  std::string name() const override { return "seasonal-naive"; }
  void fit(const std::vector<float>& train) override;
  std::vector<float> predict(const std::vector<float>& series,
                             std::size_t begin) override;

 private:
  std::size_t season_;
};

/// Seasonal autoregression fit by ridge-stabilized least squares:
/// y_t = b0 + sum_i a_i y_{t-i} + sum_j s_j y_{t-j*season}  — the ARIMA-
/// family statistical baseline (AR(p) with seasonal lags, trend via bias).
class SeasonalArBaseline : public BaselineForecaster {
 public:
  SeasonalArBaseline(std::size_t ar_order = 3, std::size_t seasonal_lags = 2,
                     std::size_t season = 24);
  std::string name() const override;
  void fit(const std::vector<float>& train) override;
  std::vector<float> predict(const std::vector<float>& series,
                             std::size_t begin) override;

  const std::vector<float>& coefficients() const { return coeffs_; }

 private:
  std::size_t max_lag() const;
  /// Feature vector for predicting position t of `series`.
  std::vector<float> features(const std::vector<float>& series,
                              std::size_t t) const;

  std::size_t ar_order_;
  std::size_t seasonal_lags_;
  std::size_t season_;
  std::vector<float> coeffs_;  // [bias, a_1..a_p, s_1..s_q]
  bool fitted_ = false;
};

/// The "traditional neural network" baseline of the paper's reference [2]:
/// a feed-forward MLP on the same 24-value lookback window (no recurrence),
/// trained with Adam on min-max-scaled data.
class MlpBaseline : public BaselineForecaster {
 public:
  MlpBaseline(std::size_t lookback = 24, std::size_t hidden = 32,
              std::size_t epochs = 30, std::uint64_t seed = 17);
  ~MlpBaseline() override;
  std::string name() const override { return "mlp"; }
  void fit(const std::vector<float>& train) override;
  std::vector<float> predict(const std::vector<float>& series,
                             std::size_t begin) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// All baselines, ready for a sweep.
std::vector<std::unique_ptr<BaselineForecaster>> make_all_baselines(
    std::size_t season = 24);

}  // namespace evfl::forecast
