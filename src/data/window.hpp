// Sliding-window sequence construction: turns a scaled series into
// (X, y) supervised pairs with a `lookback`-step history per sample
// (the paper uses SEQUENCE_LENGTH = 24 hours), plus the window matrix the
// autoencoder reconstructs.
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor3.hpp"

namespace evfl::data {

using tensor::Tensor3;

/// Supervised forecasting dataset: X [N, lookback, 1], y [N, 1, 1] where
/// y[i] is the value immediately after window i.
struct SequenceDataset {
  Tensor3 x;
  Tensor3 y;
  std::size_t lookback = 0;
  /// Index into the source series of the target of sample i (= i + lookback).
  std::size_t target_offset(std::size_t i) const { return i + lookback; }
};

/// Build forecasting pairs.  Requires series.size() > lookback.
SequenceDataset make_forecast_sequences(const std::vector<float>& series,
                                        std::size_t lookback);

/// Build autoencoder windows: X [N, window, 1] where sample i covers source
/// points [i, i + window).  Stride-1 sliding.
Tensor3 make_autoencoder_windows(const std::vector<float>& series,
                                 std::size_t window);

/// Per-point mean reconstructed *value* across every window position that
/// covers the point — the model-based repair signal for
/// anomaly::ImputationMethod::kModelReconstruction.
std::vector<float> per_point_reconstruction(const Tensor3& recon,
                                            std::size_t series_length);

/// How a point's squared reconstruction errors from its covering windows
/// collapse into one anomaly score.
///
/// kMin is the anomaly-detection default: an attacked point corrupts every
/// window containing it, but a *normal* point near an attack always has at
/// least one covering window free of the attack — taking the minimum stops
/// burst errors from smearing onto adjacent normal points (false
/// positives).  kMean/kMedian are exposed for ablations.
enum class ErrorAggregation { kMean, kMin, kMedian };

std::string to_string(ErrorAggregation agg);

/// Per-point aggregation of per-window, per-position reconstruction errors:
/// point_error[p] = agg over every window position that covers p of the
/// squared reconstruction error at p.  `recon` and `windows` are the
/// autoencoder output/input of make_autoencoder_windows.
std::vector<float> per_point_reconstruction_error(
    const Tensor3& windows, const Tensor3& recon, std::size_t series_length,
    ErrorAggregation agg = ErrorAggregation::kMean);

}  // namespace evfl::data
