#include "data/timeseries.hpp"

#include <algorithm>
#include <cmath>

namespace evfl::data {

std::size_t TimeSeries::anomaly_count() const {
  std::size_t n = 0;
  for (std::uint8_t l : labels) n += (l != 0);
  return n;
}

TimeSeries TimeSeries::slice(std::size_t begin, std::size_t end) const {
  EVFL_REQUIRE(begin <= end && end <= values.size(),
               "TimeSeries::slice range invalid");
  TimeSeries out;
  out.name = name;
  out.values.assign(values.begin() + begin, values.begin() + end);
  if (!labels.empty()) {
    out.labels.assign(labels.begin() + begin, labels.begin() + end);
  }
  return out;
}

TrainTestSplit temporal_split(const TimeSeries& series, double train_fraction) {
  EVFL_REQUIRE(train_fraction > 0.0 && train_fraction < 1.0,
               "train_fraction must be in (0,1)");
  series.validate();
  const std::size_t n = series.size();
  EVFL_REQUIRE(n >= 2, "temporal_split needs at least 2 points");
  const std::size_t split =
      static_cast<std::size_t>(static_cast<double>(n) * train_fraction);
  TrainTestSplit out;
  out.split_index = split;
  out.train = series.slice(0, split);
  out.test = series.slice(split, n);
  return out;
}

SeriesStats compute_stats(const std::vector<float>& values) {
  SeriesStats s;
  if (values.empty()) return s;
  double sum = 0.0;
  s.min = values[0];
  s.max = values[0];
  for (float v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = static_cast<float>(sum / values.size());
  double var = 0.0;
  for (float v : values) {
    const double d = v - s.mean;
    var += d * d;
  }
  s.stddev = static_cast<float>(std::sqrt(var / values.size()));
  return s;
}

}  // namespace evfl::data
