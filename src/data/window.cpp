#include "data/window.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace evfl::data {

SequenceDataset make_forecast_sequences(const std::vector<float>& series,
                                        std::size_t lookback) {
  EVFL_REQUIRE(lookback > 0, "lookback must be positive");
  EVFL_REQUIRE(series.size() > lookback,
               "series too short for lookback window");
  const std::size_t n = series.size() - lookback;
  SequenceDataset ds;
  ds.lookback = lookback;
  ds.x = Tensor3(n, lookback, 1);
  ds.y = Tensor3(n, 1, 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t t = 0; t < lookback; ++t) {
      ds.x(i, t, 0) = series[i + t];
    }
    ds.y(i, 0, 0) = series[i + lookback];
  }
  return ds;
}

Tensor3 make_autoencoder_windows(const std::vector<float>& series,
                                 std::size_t window) {
  EVFL_REQUIRE(window > 0, "window must be positive");
  EVFL_REQUIRE(series.size() >= window, "series too short for window");
  const std::size_t n = series.size() - window + 1;
  Tensor3 x(n, window, 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t t = 0; t < window; ++t) {
      x(i, t, 0) = series[i + t];
    }
  }
  return x;
}

std::vector<float> per_point_reconstruction(const Tensor3& recon,
                                            std::size_t series_length) {
  const std::size_t n = recon.batch();
  const std::size_t w = recon.time();
  EVFL_REQUIRE(series_length == n + w - 1,
               "series_length inconsistent with window count");
  std::vector<double> acc(series_length, 0.0);
  std::vector<std::size_t> cover(series_length, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t t = 0; t < w; ++t) {
      acc[i + t] += recon(i, t, 0);
      ++cover[i + t];
    }
  }
  std::vector<float> out(series_length, 0.0f);
  for (std::size_t p = 0; p < series_length; ++p) {
    EVFL_ASSERT(cover[p] > 0, "uncovered point in reconstruction");
    out[p] = static_cast<float>(acc[p] / cover[p]);
  }
  return out;
}

std::string to_string(ErrorAggregation agg) {
  switch (agg) {
    case ErrorAggregation::kMean: return "mean";
    case ErrorAggregation::kMin: return "min";
    case ErrorAggregation::kMedian: return "median";
  }
  return "?";
}

std::vector<float> per_point_reconstruction_error(const Tensor3& windows,
                                                  const Tensor3& recon,
                                                  std::size_t series_length,
                                                  ErrorAggregation agg) {
  EVFL_REQUIRE(windows.same_shape(recon),
               "reconstruction shape mismatch: " + windows.shape_str() +
                   " vs " + recon.shape_str());
  const std::size_t n = windows.batch();
  const std::size_t w = windows.time();
  EVFL_REQUIRE(series_length == n + w - 1,
               "series_length inconsistent with window count");

  // Collect each point's per-window squared errors.
  std::vector<std::vector<float>> per_point(series_length);
  for (auto& v : per_point) v.reserve(w);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t t = 0; t < w; ++t) {
      const float d = windows(i, t, 0) - recon(i, t, 0);
      per_point[i + t].push_back(d * d);
    }
  }

  std::vector<float> out(series_length, 0.0f);
  for (std::size_t p = 0; p < series_length; ++p) {
    std::vector<float>& errs = per_point[p];
    EVFL_ASSERT(!errs.empty(), "uncovered point in reconstruction error");
    switch (agg) {
      case ErrorAggregation::kMean: {
        double acc = 0.0;
        for (float e : errs) acc += e;
        out[p] = static_cast<float>(acc / errs.size());
        break;
      }
      case ErrorAggregation::kMin:
        out[p] = *std::min_element(errs.begin(), errs.end());
        break;
      case ErrorAggregation::kMedian: {
        const std::size_t mid = errs.size() / 2;
        std::nth_element(errs.begin(), errs.begin() + mid, errs.end());
        float m = errs[mid];
        if (errs.size() % 2 == 0) {
          const float lower =
              *std::max_element(errs.begin(), errs.begin() + mid);
          m = 0.5f * (m + lower);
        }
        out[p] = m;
        break;
      }
    }
  }
  return out;
}

}  // namespace evfl::data
