#include "data/scaler.hpp"

#include <algorithm>

namespace evfl::data {

void MinMaxScaler::fit(const std::vector<float>& values) {
  EVFL_REQUIRE(!values.empty(), "MinMaxScaler::fit on empty data");
  const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  min_ = *lo;
  max_ = *hi;
  const float range = max_ - min_;
  scale_ = range > 0.0f ? 1.0f / range : 1.0f;
  fitted_ = true;
}

float MinMaxScaler::transform_one(float v) const {
  require_fitted();
  return (v - min_) * scale_;
}

float MinMaxScaler::inverse_one(float v) const {
  require_fitted();
  return v / scale_ + min_;
}

std::vector<float> MinMaxScaler::transform(
    const std::vector<float>& values) const {
  require_fitted();
  std::vector<float> out;
  out.reserve(values.size());
  for (float v : values) out.push_back(transform_one(v));
  return out;
}

std::vector<float> MinMaxScaler::inverse(
    const std::vector<float>& values) const {
  require_fitted();
  std::vector<float> out;
  out.reserve(values.size());
  for (float v : values) out.push_back(inverse_one(v));
  return out;
}

}  // namespace evfl::data
