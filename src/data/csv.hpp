// Minimal CSV reading/writing for time series and experiment dumps
// (figure-reproduction benches emit prediction series as CSV).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "data/timeseries.hpp"

namespace evfl::data {

/// Write "index,value[,label]" rows with a header.
void write_series_csv(const TimeSeries& series, const std::string& path);
void write_series_csv(const TimeSeries& series, std::ostream& os);

/// Read back what write_series_csv produced (labels column optional).
TimeSeries read_series_csv(const std::string& path);
TimeSeries read_series_csv(std::istream& is);

/// Write aligned named columns: header "index,<name0>,<name1>,...".  All
/// columns must share a length.
void write_columns_csv(const std::vector<std::string>& names,
                       const std::vector<std::vector<float>>& columns,
                       const std::string& path);

/// Path for a generated artifact (plot CSVs, dumps): `build/artifacts/` +
/// filename, creating the directory if needed.  Keeps bench and example
/// output out of the repo root; the directory is gitignored.
std::string artifact_path(const std::string& filename);

}  // namespace evfl::data
