#include "data/csv.hpp"

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace evfl::data {

namespace {

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) out.push_back(field);
  return out;
}

}  // namespace

void write_series_csv(const TimeSeries& series, std::ostream& os) {
  series.validate();
  // 9 significant digits: lossless float round-trip, so cached pipelines
  // reproduce uncached runs bit-for-bit.
  os << std::setprecision(9);
  const bool labelled = series.has_labels();
  os << "index,value" << (labelled ? ",label" : "") << "\n";
  for (std::size_t i = 0; i < series.size(); ++i) {
    os << i << "," << series.values[i];
    if (labelled) os << "," << static_cast<int>(series.labels[i]);
    os << "\n";
  }
}

void write_series_csv(const TimeSeries& series, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw Error("cannot open for write: " + path);
  write_series_csv(series, os);
}

TimeSeries read_series_csv(std::istream& is) {
  TimeSeries series;
  std::string line;
  if (!std::getline(is, line)) throw FormatError("CSV: empty file");
  const auto header = split_line(line);
  if (header.size() < 2 || header[0] != "index" || header[1] != "value") {
    throw FormatError("CSV: unexpected header '" + line + "'");
  }
  const bool labelled = header.size() >= 3 && header[2] == "label";
  std::size_t row = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto fields = split_line(line);
    if (fields.size() < (labelled ? 3u : 2u)) {
      throw FormatError("CSV: short row " + std::to_string(row));
    }
    try {
      series.values.push_back(std::stof(fields[1]));
      if (labelled) {
        series.labels.push_back(
            static_cast<std::uint8_t>(std::stoi(fields[2]) != 0));
      }
    } catch (const std::exception&) {
      throw FormatError("CSV: unparsable row " + std::to_string(row));
    }
    ++row;
  }
  series.validate();
  return series;
}

TimeSeries read_series_csv(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw Error("cannot open for read: " + path);
  TimeSeries s = read_series_csv(is);
  s.name = path;
  return s;
}

void write_columns_csv(const std::vector<std::string>& names,
                       const std::vector<std::vector<float>>& columns,
                       const std::string& path) {
  EVFL_REQUIRE(names.size() == columns.size(),
               "write_columns_csv: names/columns mismatch");
  EVFL_REQUIRE(!columns.empty(), "write_columns_csv: no columns");
  const std::size_t n = columns[0].size();
  for (const auto& c : columns) {
    EVFL_REQUIRE(c.size() == n, "write_columns_csv: ragged columns");
  }
  std::ofstream os(path);
  if (!os) throw Error("cannot open for write: " + path);
  os << "index";
  for (const auto& name : names) os << "," << name;
  os << "\n";
  for (std::size_t i = 0; i < n; ++i) {
    os << i;
    for (const auto& c : columns) os << "," << c[i];
    os << "\n";
  }
}

std::string artifact_path(const std::string& filename) {
  const std::filesystem::path dir{"build/artifacts"};
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) throw Error("cannot create " + dir.string() + ": " + ec.message());
  return (dir / filename).string();
}

}  // namespace evfl::data
