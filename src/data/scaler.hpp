// MinMaxScaler matching scikit-learn semantics: fit on the training split,
// map to [0, 1], inverse-transform predictions back to physical units so
// MAE / RMSE / R² are reported in original charging-volume units as in the
// paper's tables.
#pragma once

#include <vector>

#include "common/error.hpp"

namespace evfl::data {

class MinMaxScaler {
 public:
  MinMaxScaler() = default;

  void fit(const std::vector<float>& values);
  bool fitted() const { return fitted_; }

  float transform_one(float v) const;
  float inverse_one(float v) const;

  std::vector<float> transform(const std::vector<float>& values) const;
  std::vector<float> inverse(const std::vector<float>& values) const;

  float data_min() const { return min_; }
  float data_max() const { return max_; }

 private:
  void require_fitted() const {
    EVFL_REQUIRE(fitted_, "MinMaxScaler used before fit()");
  }

  float min_ = 0.0f;
  float scale_ = 1.0f;  // 1 / (max - min), 1 for constant series
  float max_ = 0.0f;
  bool fitted_ = false;
};

}  // namespace evfl::data
