// Univariate hourly time series with aligned anomaly labels — the unit of
// data every pipeline stage (generation, attack injection, filtering,
// scaling, windowing) consumes and produces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace evfl::data {

/// A univariate series sampled at a fixed 1-hour cadence.
struct TimeSeries {
  std::string name;                 // e.g. "zone-102"
  std::vector<float> values;        // charging volume per hour
  std::vector<std::uint8_t> labels; // 1 = anomalous point; empty = all clean

  std::size_t size() const { return values.size(); }
  bool has_labels() const { return !labels.empty(); }

  /// Labels vector sized to values, all zero.
  void init_clean_labels() { labels.assign(values.size(), 0); }

  /// Throws if labels exist but are misaligned.
  void validate() const {
    if (!labels.empty() && labels.size() != values.size()) {
      throw Error("TimeSeries '" + name + "': labels/values length mismatch");
    }
  }

  /// Count of labelled anomalous points.
  std::size_t anomaly_count() const;

  /// Sub-series [begin, end) preserving labels.
  TimeSeries slice(std::size_t begin, std::size_t end) const;
};

/// Temporal split: first `train_fraction` of points for training, the rest
/// for testing (the paper uses 80/20 with no shuffling).
struct TrainTestSplit {
  TimeSeries train;
  TimeSeries test;
  std::size_t split_index = 0;
};

TrainTestSplit temporal_split(const TimeSeries& series, double train_fraction);

/// Simple summary statistics used by generators and tests.
struct SeriesStats {
  float mean = 0.0f;
  float stddev = 0.0f;
  float min = 0.0f;
  float max = 0.0f;
};

SeriesStats compute_stats(const std::vector<float>& values);

}  // namespace evfl::data
