#include "obs/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>

#include "common/error.hpp"

namespace evfl::obs {

void Counter::add(double amount) {
  std::lock_guard<std::mutex> lock(mutex_);
  value_ += amount;
}

double Counter::value() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return value_;
}

void Gauge::set(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  value_ = value;
}

double Gauge::value() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return value_;
}

Histogram::Histogram(double lowest, double highest, std::size_t buckets)
    : lowest_(lowest),
      log_lowest_(std::log(lowest)),
      log_growth_((std::log(highest) - std::log(lowest)) /
                  static_cast<double>(buckets)),
      counts_(buckets, 0) {
  EVFL_REQUIRE(lowest > 0.0 && highest > lowest && buckets > 0,
               "Histogram needs 0 < lowest < highest and >= 1 bucket");
}

double Histogram::bucket_lower(std::size_t index) const {
  return std::exp(log_lowest_ + log_growth_ * static_cast<double>(index));
}

double Histogram::bucket_upper(std::size_t index) const {
  return bucket_lower(index + 1);
}

void Histogram::record(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t index = 0;
  if (value > lowest_) {
    const double pos = (std::log(value) - log_lowest_) / log_growth_;
    index = std::min(counts_.size() - 1,
                     static_cast<std::size_t>(std::max(pos, 0.0)));
  }
  ++counts_[index];
  if (total_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++total_;
  sum_ += value;
}

std::size_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::size_t>(total_);
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_ > 0 ? sum_ / static_cast<double>(total_) : 0.0;
}

double Histogram::quantile_locked(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (1-based, ceil — the classic nearest-rank
  // definition), then linear interpolation inside the landing bucket.
  const double target =
      std::max(1.0, std::ceil(q * static_cast<double>(total_)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const std::uint64_t next = cum + counts_[i];
    if (static_cast<double>(next) >= target) {
      const double within =
          (target - static_cast<double>(cum)) / static_cast<double>(counts_[i]);
      const double lo = bucket_lower(i);
      const double hi = bucket_upper(i);
      const double v = lo + within * (hi - lo);
      // Bucket edges are approximations; the exact extremes are known.
      return std::clamp(v, min_, max_);
    }
    cum = next;
  }
  return max_;
}

double Histogram::quantile(double q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return quantile_locked(q);
}

void Histogram::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\"count\": " << total_ << ", \"sum\": " << sum_
     << ", \"min\": " << min_ << ", \"max\": " << max_
     << ", \"mean\": " << (total_ > 0 ? sum_ / static_cast<double>(total_) : 0.0)
     << ", \"p50\": " << quantile_locked(0.50)
     << ", \"p95\": " << quantile_locked(0.95)
     << ", \"p99\": " << quantile_locked(0.99) << ", \"buckets\": [";
  bool first = true;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << "[" << bucket_upper(i) << ", " << counts_[i] << "]";
  }
  os << "]}";
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, double lowest,
                               double highest) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(lowest, highest);
  return *slot;
}

void Registry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << name << "\": " << c->value();
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << name << "\": " << g->value();
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << name << "\": ";
    h->write_json(os);
  }
  os << "}}";
}

void Registry::write_json_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  EVFL_REQUIRE(out.is_open(), "Registry::write_json_file: cannot open " + path);
  write_json(out);
  out << "\n";
  out.flush();
  EVFL_REQUIRE(out.good(), "Registry::write_json_file: write failed: " + path);
}

}  // namespace evfl::obs
