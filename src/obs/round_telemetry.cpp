#include "obs/round_telemetry.hpp"

#include <fstream>
#include <ostream>

#include "common/error.hpp"

namespace evfl::obs {

RoundTelemetrySink::RoundTelemetrySink()
    : round_wall_seconds_(1e-6, 1e4), client_train_seconds_(1e-6, 1e4) {}

void RoundTelemetrySink::record(RoundTelemetry rt) {
  round_wall_seconds_.record(rt.wall_seconds);
  for (const double s : rt.client_train_seconds) {
    if (s > 0.0) client_train_seconds_.record(s);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  rounds_.push_back(std::move(rt));
}

std::size_t RoundTelemetrySink::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rounds_.size();
}

std::vector<RoundTelemetry> RoundTelemetrySink::rounds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rounds_;
}

double RoundTelemetrySink::round_seconds_quantile(double q) const {
  return round_wall_seconds_.quantile(q);
}

void RoundTelemetrySink::write_json(
    std::ostream& os, const std::map<std::string, double>& extra_counters) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\n  \"rounds\": [\n";
  for (std::size_t i = 0; i < rounds_.size(); ++i) {
    const RoundTelemetry& r = rounds_[i];
    os << "    {\"round\": " << r.round
       << ", \"wall_seconds\": " << r.wall_seconds
       << ", \"max_client_seconds\": " << r.max_client_seconds
       << ", \"client_train_seconds\": [";
    for (std::size_t c = 0; c < r.client_train_seconds.size(); ++c) {
      os << (c > 0 ? ", " : "") << r.client_train_seconds[c];
    }
    os << "], \"bytes_down\": " << r.bytes_down
       << ", \"bytes_up\": " << r.bytes_up
       << ", \"logical_bytes_down\": " << r.logical_bytes_down
       << ", \"logical_bytes_up\": " << r.logical_bytes_up
       << ", \"compression_ratio\": " << r.compression_ratio()
       << ", \"updates_accepted\": " << r.updates_accepted
       << ", \"rejected_updates\": " << r.rejected_updates
       << ", \"late_updates\": " << r.late_updates
       << ", \"dropped_messages\": " << r.dropped_messages
       << ", \"timed_out_clients\": " << r.timed_out_clients
       << ", \"population\": " << r.population
       << ", \"sampled_clients\": " << r.sampled_clients
       << ", \"rejected_nonfinite\": " << r.rejected_nonfinite
       << ", \"rejected_stale\": " << r.rejected_stale
       << ", \"rejected_duplicate\": " << r.rejected_duplicate
       << ", \"rejected_dimension\": " << r.rejected_dimension
       << ", \"clipped\": " << r.clipped
       << ", \"clipped_aggregates\": " << r.clipped_aggregates
       << ", \"quorum_met\": " << (r.quorum_met ? "true" : "false") << "}"
       << (i + 1 < rounds_.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"histograms\": {\n    \"round_wall_seconds\": ";
  round_wall_seconds_.write_json(os);
  os << ",\n    \"client_train_seconds\": ";
  client_train_seconds_.write_json(os);
  os << "\n  },\n  \"totals\": {";

  std::uint64_t bytes_up = 0, bytes_down = 0;
  std::uint64_t logical_up = 0, logical_down = 0;
  std::size_t accepted = 0, rejected = 0, late = 0, dropped = 0, timed_out = 0;
  std::size_t sampled = 0;
  double wall = 0.0;
  for (const RoundTelemetry& r : rounds_) {
    sampled += r.sampled_clients;
    bytes_up += r.bytes_up;
    bytes_down += r.bytes_down;
    logical_up += r.logical_bytes_up;
    logical_down += r.logical_bytes_down;
    accepted += r.updates_accepted;
    rejected += r.rejected_updates;
    late += r.late_updates;
    dropped += r.dropped_messages;
    timed_out += r.timed_out_clients;
    wall += r.wall_seconds;
  }
  const std::uint64_t wire_total = bytes_up + bytes_down;
  const std::uint64_t logical_total = logical_up + logical_down;
  const double compression_ratio =
      (wire_total == 0 || logical_total == 0)
          ? 1.0
          : static_cast<double>(logical_total) /
                static_cast<double>(wire_total);
  os << "\"rounds\": " << rounds_.size() << ", \"wall_seconds\": " << wall
     << ", \"bytes_up\": " << bytes_up << ", \"bytes_down\": " << bytes_down
     << ", \"logical_bytes_up\": " << logical_up
     << ", \"logical_bytes_down\": " << logical_down
     << ", \"compression_ratio\": " << compression_ratio
     << ", \"updates_accepted\": " << accepted
     << ", \"rejected_updates\": " << rejected << ", \"late_updates\": " << late
     << ", \"dropped_messages\": " << dropped
     << ", \"timed_out_clients\": " << timed_out
     << ", \"sampled_clients\": " << sampled << "},\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : extra_counters) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << name << "\": " << value;
  }
  os << "}\n}\n";
}

void RoundTelemetrySink::write_json_file(
    const std::string& path,
    const std::map<std::string, double>& extra_counters) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw Error("RoundTelemetrySink: cannot open '" + path + "'");
  write_json(out, extra_counters);
}

}  // namespace evfl::obs
