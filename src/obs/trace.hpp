// Chrome-trace_event-compatible tracing.
//
// TraceWriter appends one JSON object per line (JSONL) to a file; each line
// is a complete-duration event ("ph":"X") or an instant event ("ph":"i")
// with steady-clock microsecond timestamps and a stable small integer per
// OS thread.  chrome://tracing and Perfetto consume the events once wrapped
// in an array (see EXPERIMENTS.md: `jq -s '{traceEvents:.}'`); every line
// also parses standalone, which is what the tests pin.
//
// TraceSpan is the RAII recording handle: construct at scope entry, emit on
// destruction.  A nullptr writer makes every operation a no-op, so call
// sites never branch.  Building with -DEVFL_TRACING=0 compiles the whole
// subsystem down to empty inline stubs (the no-overhead guarantee for
// latency-critical builds).
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#ifndef EVFL_TRACING
#define EVFL_TRACING 1
#endif

#if EVFL_TRACING

#include <chrono>
#include <fstream>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace evfl::obs {

class TraceWriter {
 public:
  /// Opens `path` for writing (truncating); throws evfl::Error on failure.
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Microseconds since this writer's construction (the trace epoch).
  std::uint64_t now_us() const;

  /// Complete-duration event covering [ts_us, ts_us + dur_us].
  /// `args_json` is either empty or a JSON object body without braces,
  /// e.g. `"round": 3, "clients": 6`.
  void complete(const char* name, const char* cat, std::uint64_t ts_us,
                std::uint64_t dur_us, const std::string& args_json = {});

  /// Instant event at the current time.
  void instant(const char* name, const char* cat,
               const std::string& args_json = {});

  /// Counter-sample event at the current time (chrome "ph":"C").
  void counter(const char* name, double value);

  std::uint64_t events_written() const;
  void flush();

 private:
  int thread_tid();

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::ofstream out_;
  std::uint64_t events_ = 0;
  std::unordered_map<std::thread::id, int> tids_;
};

class TraceSpan {
 public:
  TraceSpan() = default;
  /// Starts timing immediately; nullptr writer -> inert span.
  TraceSpan(TraceWriter* writer, const char* name, const char* cat = "evfl");
  ~TraceSpan();

  TraceSpan(TraceSpan&& other) noexcept { *this = std::move(other); }
  TraceSpan& operator=(TraceSpan&& other) noexcept;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach a numeric argument rendered into the event's "args" object.
  void annotate(const char* key, double value);
  void annotate(const char* key, std::uint64_t value);

  /// Emit now instead of at scope exit (idempotent).
  void end();

 private:
  TraceWriter* writer_ = nullptr;
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::uint64_t start_us_ = 0;
  std::string args_;
};

}  // namespace evfl::obs

#else  // !EVFL_TRACING — every operation is an inline no-op.

namespace evfl::obs {

class TraceWriter {
 public:
  explicit TraceWriter(const std::string&) {}
  std::uint64_t now_us() const { return 0; }
  void complete(const char*, const char*, std::uint64_t, std::uint64_t,
                const std::string& = {}) {}
  void instant(const char*, const char*, const std::string& = {}) {}
  void counter(const char*, double) {}
  std::uint64_t events_written() const { return 0; }
  void flush() {}
};

class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(TraceWriter*, const char*, const char* = "evfl") {}
  void annotate(const char*, double) {}
  void annotate(const char*, std::uint64_t) {}
  void end() {}
};

}  // namespace evfl::obs

#endif  // EVFL_TRACING
