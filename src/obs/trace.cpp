#include "obs/trace.hpp"

#if EVFL_TRACING

#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace evfl::obs {

namespace {

/// Escape a string for embedding in a JSON string literal.  Event names and
/// categories are compile-time literals in practice, but the writer must
/// never emit an unparseable line whatever it is handed.
std::string json_escape(const char* s) {
  std::string out;
  for (const char* p = s; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

TraceWriter::TraceWriter(const std::string& path)
    : epoch_(std::chrono::steady_clock::now()), out_(path, std::ios::trunc) {
  if (!out_) throw Error("TraceWriter: cannot open '" + path + "'");
}

TraceWriter::~TraceWriter() { flush(); }

std::uint64_t TraceWriter::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

int TraceWriter::thread_tid() {
  // Caller holds mutex_.
  const auto id = std::this_thread::get_id();
  const auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  const int tid = static_cast<int>(tids_.size()) + 1;
  tids_.emplace(id, tid);
  return tid;
}

void TraceWriter::complete(const char* name, const char* cat,
                           std::uint64_t ts_us, std::uint64_t dur_us,
                           const std::string& args_json) {
  std::ostringstream os;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\"name\": \"" << json_escape(name) << "\", \"cat\": \""
       << json_escape(cat) << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
       << thread_tid() << ", \"ts\": " << ts_us << ", \"dur\": " << dur_us
       << ", \"args\": {" << args_json << "}}";
    out_ << os.str() << "\n";
    ++events_;
  }
}

void TraceWriter::instant(const char* name, const char* cat,
                          const std::string& args_json) {
  std::ostringstream os;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\"name\": \"" << json_escape(name) << "\", \"cat\": \""
       << json_escape(cat)
       << "\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \"tid\": "
       << thread_tid() << ", \"ts\": " << now_us() << ", \"args\": {"
       << args_json << "}}";
    out_ << os.str() << "\n";
    ++events_;
  }
}

void TraceWriter::counter(const char* name, double value) {
  std::ostringstream os;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\"name\": \"" << json_escape(name)
       << "\", \"ph\": \"C\", \"pid\": 1, \"tid\": " << thread_tid()
       << ", \"ts\": " << now_us() << ", \"args\": {\"value\": " << value
       << "}}";
    out_ << os.str() << "\n";
    ++events_;
  }
}

std::uint64_t TraceWriter::events_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void TraceWriter::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  out_.flush();
}

TraceSpan::TraceSpan(TraceWriter* writer, const char* name, const char* cat)
    : writer_(writer), name_(name), cat_(cat) {
  if (writer_ != nullptr) start_us_ = writer_->now_us();
}

TraceSpan& TraceSpan::operator=(TraceSpan&& other) noexcept {
  if (this != &other) {
    end();
    writer_ = other.writer_;
    name_ = other.name_;
    cat_ = other.cat_;
    start_us_ = other.start_us_;
    args_ = std::move(other.args_);
    other.writer_ = nullptr;
  }
  return *this;
}

TraceSpan::~TraceSpan() { end(); }

void TraceSpan::annotate(const char* key, double value) {
  if (writer_ == nullptr) return;
  std::ostringstream os;
  if (!args_.empty()) os << ", ";
  os << "\"" << json_escape(key) << "\": " << value;
  args_ += os.str();
}

void TraceSpan::annotate(const char* key, std::uint64_t value) {
  if (writer_ == nullptr) return;
  std::ostringstream os;
  if (!args_.empty()) os << ", ";
  os << "\"" << json_escape(key) << "\": " << value;
  args_ += os.str();
}

void TraceSpan::end() {
  if (writer_ == nullptr) return;
  const std::uint64_t end_us = writer_->now_us();
  writer_->complete(name_, cat_, start_us_,
                    end_us > start_us_ ? end_us - start_us_ : 0, args_);
  writer_ = nullptr;
}

}  // namespace evfl::obs

#endif  // EVFL_TRACING
