// evfl::obs telemetry primitives — the structured counterpart to the flat
// runtime::Metrics name→double map.
//
//   Counter   — monotonically accumulating double (thread-safe add).
//   Gauge     — last-write-wins double (thread-safe set).
//   Histogram — fixed log-spaced buckets over a positive value domain with
//               exact count/sum/min/max and interpolated quantiles
//               (p50/p95/p99 summaries for latency distributions).
//   Registry  — name → instrument map with stable references and a JSON
//               renderer, so benches dump every instrument in one file.
//
// All instruments are individually thread-safe; none allocate on the hot
// recording path beyond their fixed construction-time storage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace evfl::obs {

class Counter {
 public:
  void add(double amount = 1.0);
  double value() const;

 private:
  mutable std::mutex mutex_;
  double value_ = 0.0;
};

class Gauge {
 public:
  void set(double value);
  double value() const;

 private:
  mutable std::mutex mutex_;
  double value_ = 0.0;
};

/// Log-spaced-bucket histogram for positive measurements (latencies, byte
/// counts).  Values are bucketed in [lowest, highest); out-of-range values
/// land in the edge buckets but min/max/sum stay exact, and quantiles are
/// clamped to the observed [min, max] so a single sample reports itself.
class Histogram {
 public:
  /// Default domain covers 1 microsecond to ~3 hours when recording
  /// seconds, with ~7% bucket resolution.
  explicit Histogram(double lowest = 1e-6, double highest = 1e4,
                     std::size_t buckets = 128);

  void record(double value);

  std::size_t count() const;
  double sum() const;
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty
  double mean() const;

  /// Interpolated quantile, q in [0, 1]; 0 when empty.
  double quantile(double q) const;

  /// `{"count":N,"sum":...,"min":...,"max":...,"mean":...,
  ///   "p50":...,"p95":...,"p99":...,"buckets":[[upper_bound,count],...]}`
  /// (only non-empty buckets are listed).
  void write_json(std::ostream& os) const;

 private:
  double bucket_lower(std::size_t index) const;
  double bucket_upper(std::size_t index) const;
  double quantile_locked(double q) const;

  double lowest_;
  double log_lowest_;
  double log_growth_;  // log of per-bucket growth factor
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named instruments with stable addresses: the reference returned by
/// counter()/gauge()/histogram() stays valid for the registry's lifetime,
/// so hot paths resolve the name once and keep the pointer.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Histogram construction parameters apply on first use of the name.
  Histogram& histogram(const std::string& name, double lowest = 1e-6,
                       double highest = 1e4);

  /// `{"counters":{...},"gauges":{...},"histograms":{...}}`
  void write_json(std::ostream& os) const;

  /// write_json to `path` (truncating) with a trailing newline; throws
  /// evfl::Error when the file cannot be opened or written.
  void write_json_file(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace evfl::obs
