// Per-federated-round telemetry records.
//
// Each driver closes a round by filling one RoundTelemetry — wall time,
// per-client train seconds, serialized bytes in both directions, the
// round-protocol robustness counters, and the validator's rejection
// breakdown — and handing it to a RoundTelemetrySink.  The sink keeps the
// ordered record list plus latency/size histograms and renders everything
// as one metrics JSON document, which is what benches write next to their
// trace files and what later scaling PRs regress against.
//
// The structs are plain data in evfl::obs so the subsystem stays free of
// fl/ dependencies; the drivers copy their counters in.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"

namespace evfl::obs {

struct RoundTelemetry {
  std::uint32_t round = 0;
  double wall_seconds = 0.0;
  /// Slowest client's local-training time (the round's duration under
  /// genuine client parallelism).
  double max_client_seconds = 0.0;
  /// Local-training seconds per client slot (driver client order).
  std::vector<double> client_train_seconds;

  /// Serialized broadcast bytes that reached clients this round (wire size
  /// — what the configured codec actually put on the network).
  std::uint64_t bytes_down = 0;
  /// Serialized update bytes the server drained this round (wire size).
  std::uint64_t bytes_up = 0;
  /// Dense-equivalent bytes for the same messages (v1 header + fp32
  /// payload): what an uncompressed exchange would have cost.  The ratio
  /// logical/wire is the round's compression factor.
  std::uint64_t logical_bytes_down = 0;
  std::uint64_t logical_bytes_up = 0;

  /// logical / wire bytes over both legs; 1.0 when nothing crossed the
  /// network or no logical accounting was provided.
  double compression_ratio() const {
    const std::uint64_t wire = bytes_down + bytes_up;
    const std::uint64_t logical = logical_bytes_down + logical_bytes_up;
    if (wire == 0 || logical == 0) return 1.0;
    return static_cast<double>(logical) / static_cast<double>(wire);
  }

  // Round-protocol counters (mirrors fl::RoundMetrics).
  std::size_t updates_accepted = 0;
  std::size_t rejected_updates = 0;
  std::size_t late_updates = 0;
  std::size_t dropped_messages = 0;
  std::size_t timed_out_clients = 0;
  /// Fleet size the driver manages, and how many clients were sampled to
  /// participate this round (== population without client sampling).
  std::size_t population = 0;
  std::size_t sampled_clients = 0;

  // Validator rejection reasons (mirrors fl::RoundAudit).
  std::size_t rejected_nonfinite = 0;
  std::size_t rejected_stale = 0;
  std::size_t rejected_duplicate = 0;
  std::size_t rejected_dimension = 0;
  std::size_t clipped = 0;
  /// Clipped updates that were forwarded shard aggregates — each one cost a
  /// whole shard its exact int128 fold, not just one client's movement.
  std::size_t clipped_aggregates = 0;
  bool quorum_met = true;
};

/// Thread-safe accumulator of RoundTelemetry records across one or more
/// federated runs.
class RoundTelemetrySink {
 public:
  RoundTelemetrySink();

  void record(RoundTelemetry rt);

  std::size_t size() const;
  std::vector<RoundTelemetry> rounds() const;

  /// Interpolated quantile of per-round wall seconds, q in [0,1].
  double round_seconds_quantile(double q) const;

  /// Render the full document:
  /// {"rounds":[...], "histograms":{"round_wall_seconds":{...,"p50":...},
  ///  "client_train_seconds":{...}}, "totals":{...}, "counters":{...}}
  /// `extra_counters` lets the caller merge in ambient counters (e.g. a
  /// runtime::Metrics snapshot).
  void write_json(std::ostream& os,
                  const std::map<std::string, double>& extra_counters = {}) const;

  /// write_json to `path`; throws evfl::Error when the file cannot be
  /// opened.
  void write_json_file(const std::string& path,
                       const std::map<std::string, double>& extra_counters =
                           {}) const;

 private:
  mutable std::mutex mutex_;
  std::vector<RoundTelemetry> rounds_;
  Histogram round_wall_seconds_;
  Histogram client_train_seconds_;
};

}  // namespace evfl::obs
